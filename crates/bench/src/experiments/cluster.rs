//! Cluster-tier experiment: replica routing above the serving engine.
//!
//! Not a paper figure — the paper serves one appliance (§III), but its
//! own service-level framing begs the next question: a datacenter runs
//! *fleets* of appliances behind one arrival stream, so who decides
//! which replica serves which request? This experiment measures the
//! cluster tier ([`ClusterRouter`]) end to end, in four sweeps:
//!
//! 1. **Placement under saturation** — round-robin vs least-outstanding
//!    vs least-K/V-loaded on memory-bound replicas. The chatbot mix
//!    cycles four input sizes with period four, so round-robin over
//!    four replicas *resonates*: each replica receives a fixed input
//!    size, one of them all heavy contexts, and the pooled p99 lives in
//!    that replica's queue. Load-aware placement breaks the resonance.
//! 2. **Session affinity** — with paged replicas sharing a system
//!    prompt, [`SessionAffinity`] keeps a session on the replica whose
//!    prefix cache is warm; spraying the same stream round-robin
//!    recomputes the prefix once per replica.
//! 3. **Prefill/decode disaggregation** — the same device count split
//!    into a prefill pool and a decode pool ([`DisaggregatedCluster`]),
//!    with the context's K/V cache moved over a modelled 100 Gb/s link;
//!    the table reports the end-to-end cost of that transfer against
//!    the unified topology.
//! 4. **Wide sharding** — one replica grown past the paper's 4 FPGAs:
//!    per-device weight shard, K/V bytes per token and resident-token
//!    headroom shrink with the shard while batch-1 latency improves,
//!    which is exactly the trade the placement policies arbitrate.
//!
//! Knobs: model, replica count, request count, arrival rate, the
//! per-replica K/V budget (tokens) that makes replicas memory-bound,
//! the continuous max batch, and the shard-width grid.
//!
//! [`ClusterRouter`]: dfx_serve::ClusterRouter
//! [`SessionAffinity`]: dfx_serve::SessionAffinity
//! [`DisaggregatedCluster`]: dfx_serve::DisaggregatedCluster

use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_hw::LinkModel;
use dfx_model::{GptConfig, Workload};
use dfx_serve::{
    chatbot_mix, ArrivalProcess, Backend, ClusterReport, ClusterRouter, ContinuousBatching,
    DecodeOnly, DisaggregatedCluster, LeastKvLoaded, LeastOutstanding, Placement, RoundRobin,
    SessionAffinity,
};
use dfx_sim::{Appliance, PagedKvConfig, PreemptionPolicy, SimError};

/// Arrival seed shared with the other service-level experiments.
const SEED: u64 = 0x5EED;

/// The shared system prompt of the affinity sweep, tokens.
const SHARED_PREFIX: usize = 128;

/// Paged-K/V block size of the affinity sweep, tokens.
const BLOCK_TOKENS: usize = 16;

/// Headline configuration: the paper's largest GPT-2 across four
/// single-FPGA replicas, memory-bound to a 480-token K/V budget each,
/// and a sharding sweep past the paper's 4-FPGA appliance.
pub fn run() -> ExperimentReport {
    run_setup(
        GptConfig::gpt2_1_5b(),
        4,
        64,
        1.0,
        480,
        8,
        &[1, 2, 4, 8, 12],
    )
}

/// Runs the four sweeps on one model/cluster setup. `kv_budget_tokens`
/// caps every replica's HBM at "weight shard + that many K/V tokens"
/// so placement decisions are memory-bound; `shard_counts` lists the
/// per-replica FPGA counts of the wide-sharding table (each must
/// divide the model's head count).
///
/// # Panics
///
/// Panics when the setup is invalid (indivisible shard count, a K/V
/// budget no request fits, an empty grid): experiment inputs are
/// compile-time constants, so a failure is a bug in the caller, not an
/// input error.
pub fn run_setup(
    cfg: GptConfig,
    n_replicas: usize,
    n_requests: usize,
    rate_per_s: f64,
    kv_budget_tokens: usize,
    max_batch: usize,
    shard_counts: &[usize],
) -> ExperimentReport {
    match build(
        cfg,
        n_replicas,
        n_requests,
        rate_per_s,
        kv_budget_tokens,
        max_batch,
        shard_counts,
    ) {
        Ok(report) => report,
        // lint: allow(panic-policy, experiment inputs are compile-time constants; see rustdoc)
        Err(e) => panic!("cluster experiment failed: {e:?}"),
    }
}

/// A memory-bound single-FPGA replica: HBM capped at the weight shard
/// plus `kv_budget_tokens` of K/V.
fn bounded_replica(cfg: &GptConfig, kv_budget_tokens: usize) -> Result<Appliance, SimError> {
    let base = Appliance::timing_only(cfg.clone(), 1)?;
    let memory = base.memory_model();
    let capacity = memory.weight_bytes + kv_budget_tokens as u64 * memory.kv_bytes_per_token;
    base.with_hbm_capacity(capacity)
}

fn build(
    cfg: GptConfig,
    n_replicas: usize,
    n_requests: usize,
    rate_per_s: f64,
    kv_budget_tokens: usize,
    max_batch: usize,
    shard_counts: &[usize],
) -> Result<ExperimentReport, SimError> {
    let mut report = ExperimentReport::new(
        "cluster",
        "Cluster tier: placement policy, session affinity, disaggregation, wide sharding",
    );
    let mix = chatbot_mix(n_requests, cfg.max_seq_len);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s,
        seed: SEED,
    };

    // --- 1. Placement under saturation -------------------------------
    let replicas: Vec<Appliance> = (0..n_replicas)
        .map(|_| bounded_replica(&cfg, kv_budget_tokens))
        .collect::<Result<_, _>>()?;
    let mut placement_table = MdTable::new(
        format!(
            "Placement on {n_replicas} memory-bound replicas ({kv_budget_tokens}-token K/V \
             budget each): {n_requests} chatbot-mix requests at {rate_per_s}/s, continuous max \
             batch {max_batch}; percentiles are pooled across replicas"
        ),
        &[
            "placement",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "goodput tok/s",
            "balance",
            "mean util %",
        ],
    );
    let run_placement = |placement: Box<dyn Placement>| -> Result<ClusterReport, SimError> {
        let servers: Vec<&dyn Backend> = replicas.iter().map(|a| a as &dyn Backend).collect();
        ClusterRouter::uniform(servers, placement)?
            .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)))
            .run(&mix, &arrivals)
    };
    // The three placement sweeps share nothing (each builds its own
    // router over the same replica pool), so they fan out over the
    // work-stealing pool; results come back in placement order.
    let mut placement_reports = rayon_lite::par_map(&[0usize, 1, 2], |&which| {
        let placement: Box<dyn Placement> = match which {
            0 => Box::new(RoundRobin::new()),
            1 => Box::new(LeastOutstanding),
            _ => Box::new(LeastKvLoaded),
        };
        run_placement(placement)
    })
    .into_iter();
    // lint: allow(panic-policy, par_map returns exactly one result per input index)
    let mut next_report = || placement_reports.next().expect("one report per placement");
    let rr = next_report()?;
    let lo = next_report()?;
    let lkl = next_report()?;
    for r in [&rr, &lo, &lkl] {
        placement_table.push_row(vec![
            r.placement.clone(),
            fmt(r.p50_sojourn_ms, 1),
            fmt(r.p95_sojourn_ms, 1),
            fmt(r.p99_sojourn_ms, 1),
            fmt(r.goodput_tps, 1),
            fmt(r.balance_index, 3),
            fmt(100.0 * r.mean_utilization(), 1),
        ]);
    }
    report.note(format!(
        "The chatbot mix cycles input sizes with the replica count's period, so round-robin \
         pins every heavy context on one replica; K/V-aware placement cuts the pooled p99 \
         from {} ms to {} ms ({:.2}x) at equal hardware.",
        fmt(rr.p99_sojourn_ms, 1),
        fmt(lkl.p99_sojourn_ms, 1),
        rr.p99_sojourn_ms / lkl.p99_sojourn_ms.max(f64::MIN_POSITIVE),
    ));
    report.table(placement_table);

    // --- 2. Session affinity on paged replicas -----------------------
    let paged_pair: Vec<Appliance> = (0..2)
        .map(|_| {
            Appliance::timing_only(cfg.clone(), 1)?.with_kv_paging(
                PagedKvConfig::new(BLOCK_TOKENS)
                    .with_policy(PreemptionPolicy::Retain)
                    .with_shared_prefix(SHARED_PREFIX),
            )
        })
        .collect::<Result<_, _>>()?;
    let session_stream = vec![Workload::new(SHARED_PREFIX + 32, 16); n_requests.clamp(8, 24)];
    let one_session = vec![Some(7u64); session_stream.len()];
    let mut affinity_table = MdTable::new(
        format!(
            "One {}-request session with a {SHARED_PREFIX}-token system prompt across 2 paged \
             replicas: affinity keeps the warm prefix cache, spraying recomputes it per replica",
            session_stream.len()
        ),
        &[
            "policy",
            "prefix hits (tok)",
            "prefix computed (tok)",
            "hit rate %",
            "p99 ms",
        ],
    );
    let run_affinity = |placement: Box<dyn Placement>| -> Result<ClusterReport, SimError> {
        let servers: Vec<&dyn Backend> = paged_pair.iter().map(|a| a as &dyn Backend).collect();
        ClusterRouter::uniform(servers, placement)?
            .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)))
            .run_sessions(&session_stream, &one_session, &arrivals)
    };
    let sprayed = run_affinity(Box::new(RoundRobin::new()))?;
    let pinned = run_affinity(Box::new(SessionAffinity::new(Box::new(RoundRobin::new()))))?;
    for r in [&sprayed, &pinned] {
        let paging = r
            .paging
            .ok_or_else(|| SimError::Service("paged replicas reported no paging stats".into()))?;
        affinity_table.push_row(vec![
            r.placement.clone(),
            paging.prefix_hit_tokens.to_string(),
            paging.prefix_computed_tokens.to_string(),
            fmt(100.0 * paging.hit_rate(), 1),
            fmt(r.p99_sojourn_ms, 1),
        ]);
    }
    report.note(format!(
        "Session affinity lifts the cluster prefix hit rate from {}% to {}%: the session's \
         replica computes the shared prompt once, every later request hits it.",
        fmt(100.0 * sprayed.prefix_hit_rate().unwrap_or(0.0), 1),
        fmt(100.0 * pinned.prefix_hit_rate().unwrap_or(0.0), 1),
    ));
    report.table(affinity_table);

    // --- 3. Unified vs disaggregated topology ------------------------
    let prefill_count = (n_replicas / 2).max(1);
    let decode_count = (n_replicas - prefill_count).max(1);
    let unified_pool: Vec<Appliance> = (0..n_replicas)
        .map(|_| Appliance::timing_only(cfg.clone(), 1))
        .collect::<Result<_, _>>()?;
    let prefill_pool: Vec<Appliance> = (0..prefill_count)
        .map(|_| Appliance::timing_only(cfg.clone(), 1))
        .collect::<Result<_, _>>()?;
    let decode_pool: Vec<Appliance> = (0..decode_count)
        .map(|_| Appliance::timing_only(cfg.clone(), 1))
        .collect::<Result<_, _>>()?;
    let decode_only: Vec<DecodeOnly> = decode_pool
        .iter()
        .map(|a| DecodeOnly::new(a as &dyn Backend))
        .collect();

    let unified = {
        let servers: Vec<&dyn Backend> = unified_pool.iter().map(|a| a as &dyn Backend).collect();
        ClusterRouter::uniform(servers, Box::new(RoundRobin::new()))?
            .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)))
            .run(&mix, &arrivals)?
    };
    let disaggregated = {
        let prefill_servers: Vec<&dyn Backend> =
            prefill_pool.iter().map(|a| a as &dyn Backend).collect();
        let decode_servers: Vec<&dyn Backend> =
            decode_only.iter().map(|a| a as &dyn Backend).collect();
        let prefill = ClusterRouter::uniform(prefill_servers, Box::new(RoundRobin::new()))?
            .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)));
        let decode = ClusterRouter::uniform(decode_servers, Box::new(RoundRobin::new()))?
            .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)));
        DisaggregatedCluster::new(prefill, decode, LinkModel::qsfp28()).run(&mix, &arrivals)?
    };
    let mut topology_table = MdTable::new(
        format!(
            "Unified ({n_replicas} replicas) vs disaggregated ({prefill_count} prefill + \
             {decode_count} decode) at equal device count, K/V handoff over a 100 Gb/s link"
        ),
        &[
            "topology",
            "p99 ms",
            "goodput tok/s",
            "transfers",
            "K/V moved MiB",
            "mean link ms",
        ],
    );
    topology_table.push_row(vec![
        "unified".into(),
        fmt(unified.p99_sojourn_ms, 1),
        fmt(unified.goodput_tps, 1),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    let transfer = disaggregated
        .transfer
        .ok_or_else(|| SimError::Service("disaggregated run reported no transfer".into()))?;
    topology_table.push_row(vec![
        "disaggregated".into(),
        fmt(disaggregated.p99_sojourn_ms, 1),
        fmt(disaggregated.goodput_tps, 1),
        transfer.transfers.to_string(),
        fmt(transfer.bytes as f64 / (1 << 20) as f64, 1),
        fmt(transfer.mean_ms, 3),
    ]);
    report.note(format!(
        "Disaggregation moves {} K/V transfers ({} MiB) over the link at {} ms each — a \
         real, modelled cost ({} ms total) the unified topology never pays.",
        transfer.transfers,
        fmt(transfer.bytes as f64 / (1 << 20) as f64, 1),
        fmt(transfer.mean_ms, 3),
        fmt(transfer.total_ms, 1),
    ));
    report.table(topology_table);

    // --- 4. Wide sharding --------------------------------------------
    let point = {
        let w = Workload::chatbot();
        if w.input_len + w.output_len > cfg.max_seq_len {
            Workload::new(cfg.max_seq_len / 2, cfg.max_seq_len / 4)
        } else {
            w
        }
    };
    let mut shard_table = MdTable::new(
        format!(
            "Wide sharding: one {} replica grown across FPGAs, batch-1 {point} request",
            cfg.name
        ),
        &[
            "FPGAs",
            "weight MiB/dev",
            "K/V KiB/tok/dev",
            "resident tokens/dev",
            "latency ms",
            "tok/s",
        ],
    );
    let shard_rows =
        rayon_lite::par_map(shard_counts, |&devices| -> Result<Vec<String>, SimError> {
            let wide = Appliance::timing_only(cfg.clone(), devices)?;
            let memory = wide.memory_model();
            let run = wide.serve(point)?;
            Ok(vec![
                devices.to_string(),
                fmt(memory.weight_bytes as f64 / (1 << 20) as f64, 1),
                fmt(memory.kv_bytes_per_token as f64 / 1024.0, 2),
                memory.max_resident_tokens().to_string(),
                fmt(run.total_ms(), 1),
                fmt(run.tokens_per_second(), 1),
            ])
        });
    for row in shard_rows {
        shard_table.push_row(row?);
    }
    report.note(
        "Wider shards shrink the per-device weight slice and K/V footprint, buying \
         resident-token headroom and batch-1 latency — the capacity signal LeastKvLoaded \
         reads when pools are heterogeneous.",
    );
    report.table(shard_table);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> GptConfig {
        GptConfig::new("cluster-smoke", 64, 2, 2, 512, 640)
    }

    /// Acceptance: K/V-aware placement beats round-robin's resonant
    /// assignment on pooled p99 when replicas are memory-bound and the
    /// arrival pace saturates the replica round-robin pins every heavy
    /// context on. The 2.8 ms gap sits in the measured window where
    /// the balanced cluster keeps up (mean service 8.5 ms over 4
    /// replicas) but the all-heavy replica cannot (a heavy request
    /// every 11.2 ms against a 13.2 ms mean service).
    #[test]
    fn least_kv_loaded_beats_round_robin_p99_under_saturation() {
        let cfg = smoke_cfg();
        let replicas: Vec<Appliance> = (0..4)
            .map(|_| bounded_replica(&cfg, 320).unwrap())
            .collect();
        let mix = chatbot_mix(64, cfg.max_seq_len);
        let paced = ArrivalProcess::Trace((0..mix.len()).map(|i| i as f64 * 2.8).collect());
        let run = |placement: Box<dyn Placement>| {
            let servers: Vec<&dyn Backend> = replicas.iter().map(|a| a as &dyn Backend).collect();
            ClusterRouter::uniform(servers, placement)
                .unwrap()
                .with_scheduler_factory(|| Box::new(ContinuousBatching::new(8)))
                .run(&mix, &paced)
                .unwrap()
        };
        let rr = run(Box::new(RoundRobin::new()));
        let lkl = run(Box::new(LeastKvLoaded));
        assert!(
            lkl.p99_sojourn_ms < rr.p99_sojourn_ms,
            "least-kv p99 {} !< round-robin p99 {}",
            lkl.p99_sojourn_ms,
            rr.p99_sojourn_ms
        );
        // Round-robin's dispatch counts are perfectly even; the win
        // comes from balancing K/V claims, not request counts.
        assert_eq!(rr.balance_index, 1.0);
    }

    /// Acceptance: session affinity strictly lifts cluster prefix
    /// hit-tokens over spraying the same session round-robin.
    #[test]
    fn session_affinity_lifts_prefix_hits_over_round_robin() {
        let cfg = smoke_cfg();
        let paged: Vec<Appliance> = (0..2)
            .map(|_| {
                Appliance::timing_only(cfg.clone(), 1)
                    .unwrap()
                    .with_kv_paging(
                        PagedKvConfig::new(BLOCK_TOKENS)
                            .with_policy(PreemptionPolicy::Retain)
                            .with_shared_prefix(SHARED_PREFIX),
                    )
                    .unwrap()
            })
            .collect();
        let stream = vec![Workload::new(SHARED_PREFIX + 32, 16); 12];
        let sessions = vec![Some(1u64); stream.len()];
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 50.0,
            seed: SEED,
        };
        let run = |placement: Box<dyn Placement>| {
            let servers: Vec<&dyn Backend> = paged.iter().map(|a| a as &dyn Backend).collect();
            ClusterRouter::uniform(servers, placement)
                .unwrap()
                .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)))
                .run_sessions(&stream, &sessions, &arrivals)
                .unwrap()
        };
        let sprayed = run(Box::new(RoundRobin::new()));
        let pinned = run(Box::new(SessionAffinity::new(Box::new(RoundRobin::new()))));
        let (s, p) = (sprayed.paging.unwrap(), pinned.paging.unwrap());
        assert!(
            p.prefix_hit_tokens > s.prefix_hit_tokens,
            "affinity hits {} !> round-robin hits {}",
            p.prefix_hit_tokens,
            s.prefix_hit_tokens
        );
        assert!(pinned.prefix_hit_rate().unwrap() > sprayed.prefix_hit_rate().unwrap());
    }

    /// Acceptance: the disaggregated topology pays a nonzero modelled
    /// K/V-transfer cost.
    #[test]
    fn disaggregated_topology_reports_nonzero_transfer_cost() {
        let cfg = smoke_cfg();
        let prefill_app = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let decode_app = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let decode_only = DecodeOnly::new(&decode_app as &dyn Backend);
        let prefill =
            ClusterRouter::uniform(vec![&prefill_app], Box::new(RoundRobin::new())).unwrap();
        let decode = ClusterRouter::uniform(
            vec![&decode_only as &dyn Backend],
            Box::new(RoundRobin::new()),
        )
        .unwrap();
        let mix = chatbot_mix(8, cfg.max_seq_len);
        let report = DisaggregatedCluster::new(prefill, decode, LinkModel::qsfp28())
            .run(&mix, &ArrivalProcess::Trace(vec![0.0; mix.len()]))
            .unwrap();
        let transfer = report.transfer.unwrap();
        assert!(transfer.transfers > 0);
        assert!(transfer.bytes > 0);
        assert!(transfer.total_ms > 0.0 && transfer.mean_ms > 0.0);
        assert_eq!(report.total_requests, mix.len());
    }

    #[test]
    fn smoke_setup_produces_all_four_tables() {
        let report = run_setup(smoke_cfg(), 2, 16, 200.0, 320, 4, &[1, 2]);
        assert_eq!(report.id, "cluster");
        assert_eq!(report.tables.len(), 4);
        assert_eq!(report.tables[0].rows.len(), 3);
        assert_eq!(report.tables[1].rows.len(), 2);
        assert_eq!(report.tables[2].rows.len(), 2);
        assert_eq!(report.tables[3].rows.len(), 2);
    }
}

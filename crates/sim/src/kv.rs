//! The K/V cache allocator: HBM admission control for multi-request
//! execution.
//!
//! Each U280's HBM holds the core's weight shard *and* the growing K/V
//! attention state of every live request (paper §IV-B), so the live
//! batch is bounded by memory, not only by padded shape. [`KvPool`]
//! brokers that budget for the incremental executor
//! ([`BatchState`](crate::BatchState)): a member *reserves* its maximum
//! claim (`input_len + output_len` context positions) at admission —
//! admission fails when the claim exceeds the free budget — *grows*
//! its used count as positions are actually written, and *releases*
//! exactly its reservation when it retires (or exits early: early exit
//! means a member stops when it is done, so its claim is its high-water
//! mark either way).
//!
//! Reserving the maximum up front (TGI-style budgeting) rather than
//! growing on demand means an admitted member can never be killed
//! mid-decode by a later admission: the pool never over-commits, which
//! the property suite pins down.

use crate::error::SimError;
use dfx_hw::MemoryModel;
use std::collections::BTreeMap;

/// One member's lease on the pool, in context positions (tokens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lease {
    /// Positions reserved at admission (the member's maximum K/V claim).
    claim_tokens: usize,
    /// Positions actually written so far.
    used_tokens: usize,
}

/// A capacity-aware K/V cache allocator over one device's
/// [`MemoryModel`].
///
/// # Examples
///
/// ```
/// use dfx_hw::MemoryModel;
/// use dfx_sim::KvPool;
///
/// // Room for 100 tokens of K/V next to the weights.
/// let mut pool = KvPool::new(MemoryModel::new(2048, 1024, 10));
/// assert_eq!(pool.free_tokens(), 102);
/// pool.reserve(0, 60).unwrap();
/// assert!(pool.reserve(1, 60).is_err(), "claim exceeds the free budget");
/// pool.reserve(1, 40).unwrap();
/// assert_eq!(pool.release(0), 60);
/// assert_eq!(pool.free_tokens(), 62);
/// ```
#[derive(Debug, Clone)]
pub struct KvPool {
    memory: MemoryModel,
    leases: BTreeMap<u64, Lease>,
    /// Sum of every live lease's claim, in tokens.
    committed_tokens: usize,
}

impl KvPool {
    /// An empty pool over `memory`'s K/V budget.
    pub fn new(memory: MemoryModel) -> Self {
        KvPool {
            memory,
            leases: BTreeMap::new(),
            committed_tokens: 0,
        }
    }

    /// The capacity model the pool allocates against.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Tokens of K/V claim still available.
    pub fn free_tokens(&self) -> usize {
        (self.memory.max_resident_tokens() as usize).saturating_sub(self.committed_tokens)
    }

    /// Tokens committed across every live lease (claims, not writes).
    pub fn committed_tokens(&self) -> usize {
        self.committed_tokens
    }

    /// Bytes committed across every live lease.
    pub fn committed_bytes(&self) -> u64 {
        self.memory.kv_claim_bytes(self.committed_tokens)
    }

    /// Tokens actually written across every live lease.
    pub fn used_tokens(&self) -> usize {
        self.leases.values().map(|l| l.used_tokens).sum()
    }

    /// Number of live leases.
    pub fn live(&self) -> usize {
        self.leases.len()
    }

    /// Reserves `claim_tokens` context positions of K/V for member `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Memory`] when the claim exceeds the free
    /// budget (admission must wait for a retirement), and
    /// [`SimError::InvalidRequest`] for a zero claim or an id that
    /// already holds a lease.
    pub fn reserve(&mut self, id: u64, claim_tokens: usize) -> Result<(), SimError> {
        if claim_tokens == 0 {
            return Err(SimError::InvalidRequest(
                "a K/V reservation must claim at least one token".into(),
            ));
        }
        if self.leases.contains_key(&id) {
            return Err(SimError::InvalidRequest(format!(
                "member {id} already holds a K/V lease"
            )));
        }
        if claim_tokens > self.free_tokens() {
            return Err(SimError::Memory(format!(
                "K/V claim of {claim_tokens} tokens ({} B) exceeds the free HBM budget of {} \
                 tokens ({} B free of {} B after the weight shard)",
                self.memory.kv_claim_bytes(claim_tokens),
                self.free_tokens(),
                self.memory.kv_claim_bytes(self.free_tokens()),
                self.memory.kv_budget_bytes(),
            )));
        }
        self.leases.insert(
            id,
            Lease {
                claim_tokens,
                used_tokens: 0,
            },
        );
        self.committed_tokens += claim_tokens;
        Ok(())
    }

    /// Records `tokens` K/V positions written by member `id` (prefilled
    /// context or a decoded token).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for an unknown id, and
    /// [`SimError::Memory`] if the writes would exceed the member's own
    /// reservation — an executor bug, since the claim covers the whole
    /// sequence by construction.
    pub fn grow(&mut self, id: u64, tokens: usize) -> Result<(), SimError> {
        let lease = self.leases.get_mut(&id).ok_or_else(|| {
            SimError::InvalidRequest(format!("member {id} holds no K/V lease to grow"))
        })?;
        if lease.used_tokens + tokens > lease.claim_tokens {
            return Err(SimError::Memory(format!(
                "member {id} wrote {} K/V positions past its claim of {}",
                lease.used_tokens + tokens,
                lease.claim_tokens
            )));
        }
        lease.used_tokens += tokens;
        Ok(())
    }

    /// Releases member `id`'s lease, returning the claim (in tokens) it
    /// frees — always exactly what [`reserve`](KvPool::reserve) took,
    /// **not** what the member has written so far. A member retired
    /// mid-prefill (a chunked prefill cancelled between chunks, or a
    /// [`BatchState::cancel`](crate::BatchState::cancel)) frees its
    /// whole claim in one call, even though `used_tokens <
    /// claim_tokens`: the reservation was taken whole at admission, so
    /// it is returned whole at release, and no second call is needed
    /// once the prefill would have completed. Unknown ids free nothing
    /// (releasing twice is a harmless no-op, not a double-free).
    pub fn release(&mut self, id: u64) -> usize {
        match self.leases.remove(&id) {
            Some(lease) => {
                self.committed_tokens -= lease.claim_tokens;
                lease.claim_tokens
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(budget_tokens: u64) -> KvPool {
        // 1 B of weights keeps the arithmetic trivial: budget = tokens.
        KvPool::new(MemoryModel::new(budget_tokens + 1, 1, 1))
    }

    #[test]
    fn reservations_never_exceed_the_budget() {
        let mut p = pool(10);
        p.reserve(0, 6).unwrap();
        assert!(matches!(p.reserve(1, 5), Err(SimError::Memory(_))));
        p.reserve(1, 4).unwrap();
        assert_eq!(p.free_tokens(), 0);
        assert_eq!(p.committed_tokens(), 10);
        assert!(matches!(p.reserve(2, 1), Err(SimError::Memory(_))));
    }

    #[test]
    fn release_mid_prefill_frees_the_whole_claim_exactly_once() {
        // The early-cancel path: a member retired between prefill
        // chunks frees its whole reservation in one call — release
        // returns the claim, not the written prefix — and a second
        // release is a no-op, not a double-free.
        let mut p = pool(10);
        p.reserve(0, 8).unwrap();
        p.grow(0, 3).unwrap();
        assert_eq!(p.release(0), 8, "frees the claim, not the 3 written tokens");
        assert_eq!(p.free_tokens(), 10);
        assert_eq!(p.committed_tokens(), 0);
        assert_eq!(p.release(0), 0, "second release frees nothing");
        assert!(matches!(p.grow(0, 1), Err(SimError::InvalidRequest(_))));
    }

    #[test]
    fn release_frees_exactly_the_claim() {
        let mut p = pool(10);
        p.reserve(7, 6).unwrap();
        p.grow(7, 3).unwrap(); // partial use does not shrink the claim
        assert_eq!(p.release(7), 6);
        assert_eq!(p.free_tokens(), 10);
        assert_eq!(p.used_tokens(), 0);
        assert_eq!(p.release(7), 0, "double release frees nothing");
    }

    #[test]
    fn growth_is_bounded_by_the_claim() {
        let mut p = pool(10);
        p.reserve(0, 4).unwrap();
        p.grow(0, 4).unwrap();
        assert!(matches!(p.grow(0, 1), Err(SimError::Memory(_))));
        assert!(matches!(p.grow(9, 1), Err(SimError::InvalidRequest(_))));
    }

    #[test]
    fn invalid_reservations_are_rejected() {
        let mut p = pool(10);
        assert!(matches!(p.reserve(0, 0), Err(SimError::InvalidRequest(_))));
        p.reserve(0, 2).unwrap();
        assert!(matches!(p.reserve(0, 2), Err(SimError::InvalidRequest(_))));
        assert_eq!(p.live(), 1);
    }
}

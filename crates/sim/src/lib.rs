//! # dfx-sim — the simulated DFX appliance and its experiments
//!
//! Ties the stack together: the homogeneous multi-core functional
//! cluster with ring synchronisation, the [`Appliance`] API (timing-only
//! for full-scale models, functional for bit-level runs), stage-level
//! GFLOPS accounting, the Table II cost model and the §VII-A accuracy
//! harness.
//!
//! ```
//! use dfx_sim::Appliance;
//! use dfx_model::GptConfig;
//!
//! # fn main() -> Result<(), dfx_sim::SimError> {
//! // The paper's headline setup: GPT-2 1.5B on four FPGAs.
//! let appliance = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4)?;
//! let run = appliance.generate_timed(32, 4)?;
//! println!("[32:4] latency = {:.1} ms", run.total_latency_ms());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod accuracy;
mod appliance;
mod batch;
mod block;
mod cluster;
mod continuous;
mod cost;
mod error;
mod gflops;
mod kv;
mod pipeline;

pub use accuracy::{paper_tasks, quick_tasks, run_accuracy, AccuracyResult, AccuracyTask};
pub use appliance::{Appliance, GenerationRun, LatencyBreakdown, TimedRun};
pub use batch::BatchedRun;
pub use block::{BlockPool, PagedKvConfig, PagingStats, PreemptionPolicy, Prefix};
pub use cluster::FunctionalCluster;
pub use continuous::{AdmitOutcome, BatchState, KvView, RetiredMember, TokenStepOutcome};
pub use cost::{ApplianceCost, CostComparison, U280_PRICE_USD, V100_PRICE_USD};
pub use error::SimError;
pub use gflops::{dfx_stage_gflops, StageGflops};
pub use kv::KvPool;
pub use pipeline::{pipelined_generate_timed, PipelinedRun};

//! Stage-level GFLOPS accounting for the DFX appliance (paper Fig 17).

use crate::appliance::TimedRun;
use dfx_model::{flops, GptConfig};
use serde::{Deserialize, Serialize};

/// Average GFLOPS per stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageGflops {
    /// Summarization stage.
    pub summarization: f64,
    /// Generation stage (0 when the workload generates a single token).
    pub generation: f64,
    /// End to end.
    pub total: f64,
}

/// Computes model-FLOPs-per-modelled-second for a timed DFX run. The
/// paper's headline observation (Fig 17): DFX sustains nearly identical
/// GFLOPS in both stages because its dataflow is specialised for
/// matrix-vector work, while GPU/TPU collapse in the generation stage.
pub fn dfx_stage_gflops(cfg: &GptConfig, run: &TimedRun) -> StageGflops {
    let fl = flops::workload_flops(cfg, run.workload);
    let summ_s = run.summarization_ms() / 1e3;
    let gen_s = run.generation_ms() / 1e3;
    let summarization = if summ_s > 0.0 {
        fl.summarization / summ_s / 1e9
    } else {
        0.0
    };
    let generation = if gen_s > 0.0 {
        fl.generation / gen_s / 1e9
    } else {
        0.0
    };
    let total = fl.total() / ((summ_s + gen_s).max(f64::MIN_POSITIVE)) / 1e9;
    StageGflops {
        summarization,
        generation,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appliance::Appliance;

    #[test]
    fn dfx_gflops_is_stage_balanced() {
        // The defining shape of Fig 17: summarization ≈ generation GFLOPS
        // for DFX (the paper measures 185.6 vs 181.8 on the 345M model).
        let a = Appliance::timing_only(GptConfig::gpt2_345m(), 1).unwrap();
        let run = a.generate_timed(64, 64).unwrap();
        let g = dfx_stage_gflops(&GptConfig::gpt2_345m(), &run);
        let ratio = g.summarization / g.generation;
        assert!(
            (0.8..1.25).contains(&ratio),
            "summ {} vs gen {}",
            g.summarization,
            g.generation
        );
        assert!(g.total > 50.0, "total {}", g.total);
    }
}

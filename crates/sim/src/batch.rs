//! Batched execution on the DFX appliance.
//!
//! DFX is deliberately a batch-1 design — the paper's service argument
//! (§III-A) is that datacenter text generation cannot wait to form
//! batches. Measuring that trade-off, rather than asserting it, needs a
//! batched cost model: [`Appliance::generate_batch_timed`] executes one
//! *coalesced batch* of requests through the same per-token cycle model
//! ([`dfx_core::TimingCore::time_step_batched`]), where the batch pays
//! per-request compute, vector and K/V work but shares one weight stream
//! per matrix instruction.
//!
//! Batch semantics follow standard static batching: member workloads are
//! padded to the longest context and the longest output in the batch, so
//! the batch's summarization cost scales with the batch's token work
//! while decode steps amortise weight streaming. A batch of one is
//! bit-identical to [`Appliance::generate_timed`].
//!
//! For token-granular execution — members joining and leaving between
//! decode steps instead of padding to the longest — see the incremental
//! executor [`BatchState`](crate::BatchState), which continuous batching
//! schedules against.

use crate::appliance::Appliance;
use crate::error::SimError;
use dfx_core::StepTiming;
use dfx_hw::PowerModel;
use dfx_model::Workload;
use serde::{Deserialize, Serialize};

/// Timing of one coalesced batch of text-generation requests.
///
/// Mirrors [`TimedRun`](crate::TimedRun) with a batch dimension: the two
/// stage timings cover the whole batch (every member finishes together at
/// the padded shape), and the throughput accounting credits only the
/// tokens the members actually asked for — padding is a cost, not output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchedRun {
    /// The member workloads, in batch order.
    pub workloads: Vec<Workload>,
    /// The padded shape the batch executed at (longest context, longest
    /// output across members).
    pub padded: Workload,
    /// Accumulated timing of the summarization stage for the whole batch.
    pub summarization: StepTiming,
    /// Accumulated timing of the generation stage for the whole batch.
    pub generation: StepTiming,
    /// Cluster size the run was timed for.
    pub num_fpgas: usize,
}

impl BatchedRun {
    /// Number of requests in the batch.
    pub fn batch_size(&self) -> usize {
        self.workloads.len()
    }

    /// Summarization-stage latency in milliseconds.
    pub fn summarization_ms(&self) -> f64 {
        self.summarization.total.to_millis()
    }

    /// Generation-stage latency in milliseconds.
    pub fn generation_ms(&self) -> f64 {
        self.generation.total.to_millis()
    }

    /// End-to-end latency of the batch in milliseconds — every member
    /// sees this latency, because a coalesced batch completes as a unit.
    pub fn total_latency_ms(&self) -> f64 {
        self.summarization_ms() + self.generation_ms()
    }

    /// Output tokens actually requested across the batch (padding steps
    /// produce no credited tokens).
    pub fn output_tokens(&self) -> usize {
        self.workloads.iter().map(|w| w.output_len).sum()
    }

    /// Aggregate throughput: credited output tokens over the batch
    /// latency (the batched counterpart of the paper's §VII-B metric).
    pub fn tokens_per_second(&self) -> f64 {
        self.output_tokens() as f64 / (self.total_latency_ms() / 1e3)
    }

    /// Average datapath activity across the batch (for the power model).
    pub fn activity(&self) -> f64 {
        let mut merged = self.summarization.clone();
        merged.accumulate(&self.generation);
        merged.activity()
    }

    /// Average appliance power in watts.
    pub fn power_w(&self) -> f64 {
        PowerModel::u280_dfx().average_watts(self.activity()) * self.num_fpgas as f64
    }

    /// Output tokens per joule.
    pub fn tokens_per_joule(&self) -> f64 {
        self.tokens_per_second() / self.power_w()
    }
}

impl Appliance {
    /// Times one coalesced batch of workloads (available in both modes,
    /// like [`generate_timed`]).
    ///
    /// Members are padded to the batch's longest context and longest
    /// output; each padded token step runs through
    /// [`dfx_core::TimingCore::time_step_batched`], so per-request work
    /// scales with the batch while shared weight streams are paid once.
    /// `generate_batch_timed(&[w])` is bit-identical to
    /// [`generate_timed`]`(w.input_len, w.output_len)`.
    ///
    /// [`generate_timed`]: Appliance::generate_timed
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for an empty batch, for any
    /// member with an empty context, or when the *padded* shape exceeds
    /// the model's maximum sequence length; [`SimError::Memory`] when
    /// the batch's joint K/V claim (every member grows a cache at the
    /// padded shape) does not fit the per-device HBM budget next to the
    /// weight shard ([`Appliance::memory_model`]).
    pub fn generate_batch_timed(&self, batch: &[Workload]) -> Result<BatchedRun, SimError> {
        if batch.is_empty() {
            return Err(SimError::InvalidRequest("empty batch".into()));
        }
        let padded = Workload::new(
            batch.iter().map(|w| w.input_len).fold(0, usize::max),
            batch.iter().map(|w| w.output_len).fold(0, usize::max),
        );
        if let Some(w) = batch.iter().find(|w| w.input_len == 0) {
            return Err(SimError::InvalidRequest(format!(
                "batch member {w} has an empty context"
            )));
        }
        // The padded shape is what actually executes; validating it also
        // covers every member.
        self.check_workload(padded)?;
        // Every member's K/V cache grows at the padded shape, and all of
        // them are resident at once on each device. Under paged K/V the
        // same static claim is checked at block granularity (members all
        // peak together here, so paging only rounds each member's
        // footprint up to whole blocks).
        let memory = self.memory_model();
        let claim_tokens = batch.len() * padded.total_steps();
        if let Some(paging) = self.kv_paging() {
            let per_member = padded.total_steps().div_ceil(paging.block_tokens);
            let total = memory.max_resident_tokens() as usize / paging.block_tokens;
            if batch.len() * per_member > total {
                return Err(SimError::Memory(format!(
                    "a {}-way batch padded to {padded} claims {} K/V blocks of {} tokens, \
                     over the pool's {total}",
                    batch.len(),
                    batch.len() * per_member,
                    paging.block_tokens,
                )));
            }
        }
        if !memory.fits_tokens(claim_tokens) {
            return Err(SimError::Memory(format!(
                "a {}-way batch padded to {padded} claims {claim_tokens} tokens of K/V \
                 ({:.1} MB), over the {:.1} MB HBM budget left by the weight shard",
                batch.len(),
                memory.kv_claim_bytes(claim_tokens) as f64 / 1e6,
                memory.kv_budget_bytes() as f64 / 1e6,
            )));
        }

        let b = batch.len() as u32;
        let mut summarization = StepTiming::zero();
        for pos in 0..padded.input_len {
            let lm = pos + 1 == padded.input_len && padded.output_len > 0;
            let program = self.builder().token_step(pos, lm);
            summarization.accumulate(&self.timing().time_step_batched(&program, b));
        }
        let mut generation = StepTiming::zero();
        for out in 1..padded.output_len {
            let program = self.builder().token_step(padded.input_len + out - 1, true);
            generation.accumulate(&self.timing().time_step_batched(&program, b));
        }
        Ok(BatchedRun {
            workloads: batch.to_vec(),
            padded,
            summarization,
            generation,
            num_fpgas: self.num_fpgas(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::GptConfig;

    fn appliance() -> Appliance {
        Appliance::timing_only(GptConfig::tiny(), 2).unwrap()
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_the_unbatched_run() {
        let a = appliance();
        let w = Workload::new(8, 4);
        let batched = a.generate_batch_timed(&[w]).unwrap();
        let single = a.generate_timed(8, 4).unwrap();
        assert_eq!(batched.summarization, single.summarization);
        assert_eq!(batched.generation, single.generation);
        assert_eq!(batched.padded, w);
        assert_eq!(batched.total_latency_ms(), single.total_latency_ms());
        assert_eq!(batched.tokens_per_second(), single.tokens_per_second());
        assert_eq!(batched.power_w(), single.power_w());
    }

    #[test]
    fn batch_cost_is_monotone_in_batch_size() {
        let a = appliance();
        let w = Workload::new(8, 4);
        let mut prev = 0.0;
        for b in 1..=8 {
            let run = a.generate_batch_timed(&vec![w; b]).unwrap();
            assert!(
                run.total_latency_ms() >= prev,
                "batch {b} got cheaper: {} < {prev}",
                run.total_latency_ms()
            );
            prev = run.total_latency_ms();
        }
    }

    #[test]
    fn batching_improves_aggregate_throughput() {
        // Production geometry: the weight stream dominates, so a batch
        // delivers more tokens/s than batch-1 even though its latency is
        // higher — exactly the latency/throughput trade-off the serving
        // experiments sweep.
        let cfg = GptConfig::new("345m-2layer", 1024, 16, 2, 512, 64);
        let a = Appliance::timing_only(cfg, 1).unwrap();
        let w = Workload::new(16, 8);
        let one = a.generate_batch_timed(&[w]).unwrap();
        let four = a.generate_batch_timed(&[w; 4]).unwrap();
        assert!(four.tokens_per_second() > 1.5 * one.tokens_per_second());
        assert!(four.total_latency_ms() > one.total_latency_ms());
    }

    #[test]
    fn heterogeneous_batches_pad_to_the_largest_member() {
        let a = appliance();
        let mixed = a
            .generate_batch_timed(&[Workload::new(4, 2), Workload::new(8, 4)])
            .unwrap();
        let uniform = a
            .generate_batch_timed(&[Workload::new(8, 4), Workload::new(8, 4)])
            .unwrap();
        assert_eq!(mixed.padded, Workload::new(8, 4));
        // Same padded shape, same batch size: identical latency...
        assert_eq!(mixed.total_latency_ms(), uniform.total_latency_ms());
        // ...but padding earns no token credit.
        assert_eq!(mixed.output_tokens(), 6);
        assert_eq!(uniform.output_tokens(), 8);
        assert!(mixed.tokens_per_second() < uniform.tokens_per_second());
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let a = appliance();
        assert!(matches!(
            a.generate_batch_timed(&[]),
            Err(SimError::InvalidRequest(_))
        ));
        assert!(matches!(
            a.generate_batch_timed(&[Workload::new(8, 4), Workload::new(0, 4)]),
            Err(SimError::InvalidRequest(_))
        ));
        // Padded shape exceeding the context window is rejected even if
        // each member alone would fit... (tiny max_seq_len = 128)
        assert!(a
            .generate_batch_timed(&[Workload::new(100, 2), Workload::new(2, 100)])
            .is_err());
    }

    #[test]
    fn over_capacity_batches_are_memory_errors() {
        // Budget for 20 padded tokens of K/V: one 8+4 member fits, a
        // pair (2 x 12 padded tokens) does not — the joint K/V claim,
        // not the padded shape, is what rejects it.
        let a = appliance();
        let m = a.memory_model();
        let capped = Appliance::timing_only(GptConfig::tiny(), 2)
            .unwrap()
            .with_hbm_capacity(m.weight_bytes + 20 * m.kv_bytes_per_token)
            .unwrap();
        let w = Workload::new(8, 4);
        assert!(capped.generate_batch_timed(&[w]).is_ok());
        let err = capped.generate_batch_timed(&[w, w]).unwrap_err();
        assert!(matches!(err, SimError::Memory(_)), "{err:?}");
    }
}

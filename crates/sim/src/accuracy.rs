//! Inference-accuracy harness (paper §VII-A).
//!
//! The paper validates that the FP16 DFX datapath loses no accuracy
//! against the FP16 GPU on WSC (273 items), CBT-CN and CBT-NE (2,500
//! items each) — tasks that pick a word given a context. Without the
//! proprietary datasets and pretrained weights we preserve the *measured
//! property*: on synthetic contexts, does the DFX pipeline (MAC trees,
//! GELU LUT, lowered softmax/LayerNorm) select the same next token as a
//! reference model? Reported per task set:
//!
//! - `dfx_agreement` — DFX FP16 cluster vs FP32 reference;
//! - `gpu_fp16_agreement` — plain FP16 model (the GPU baseline's
//!   precision) vs FP32 reference;
//! - `delta` — their difference, the analogue of the paper's accuracy
//!   delta (0%, −0.3%, +0.15%).

use crate::cluster::FunctionalCluster;
use crate::error::SimError;
use dfx_model::{Gpt2Model, GptConfig, GptWeights};
use dfx_num::F16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic evaluation task set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccuracyTask {
    /// Task name (mirrors the paper's dataset).
    pub name: String,
    /// Number of scored items.
    pub items: usize,
    /// Context length per item.
    pub context_len: usize,
}

/// The paper's three task sets at their published sizes.
pub fn paper_tasks() -> Vec<AccuracyTask> {
    vec![
        AccuracyTask {
            name: "WSC".into(),
            items: 273,
            context_len: 12,
        },
        AccuracyTask {
            name: "CBT-CN".into(),
            items: 2_500,
            context_len: 16,
        },
        AccuracyTask {
            name: "CBT-NE".into(),
            items: 2_500,
            context_len: 16,
        },
    ]
}

/// Scaled-down variants for quick runs.
pub fn quick_tasks() -> Vec<AccuracyTask> {
    paper_tasks()
        .into_iter()
        .map(|t| AccuracyTask {
            items: (t.items / 10).max(25),
            ..t
        })
        .collect()
}

/// Agreement results for one task set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyResult {
    /// Task name.
    pub name: String,
    /// Items scored.
    pub items: usize,
    /// Fraction of items where the DFX cluster's token equals the FP32
    /// reference's token.
    pub dfx_agreement: f64,
    /// Fraction where the plain FP16 model equals the FP32 reference.
    pub gpu_fp16_agreement: f64,
}

impl AccuracyResult {
    /// DFX accuracy delta vs the FP16 GPU baseline, in percentage points
    /// (positive = DFX agrees with FP32 more often).
    pub fn delta_percent(&self) -> f64 {
        100.0 * (self.dfx_agreement - self.gpu_fp16_agreement)
    }
}

/// Runs the accuracy comparison on synthetic contexts.
///
/// # Errors
///
/// Propagates cluster construction/execution errors.
pub fn run_accuracy(
    cfg: &GptConfig,
    num_cores: usize,
    tasks: &[AccuracyTask],
    seed: u64,
) -> Result<Vec<AccuracyResult>, SimError> {
    let w32 = GptWeights::synthetic(cfg);
    let w16 = w32.cast::<F16>();
    let reference32 = Gpt2Model::new(w32);
    let reference16 = Gpt2Model::new(w16.clone());
    let mut cluster = FunctionalCluster::new(w16, num_cores)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut results = Vec::with_capacity(tasks.len());
    for task in tasks {
        let mut dfx_agree = 0usize;
        let mut fp16_agree = 0usize;
        for _ in 0..task.items {
            let context: Vec<u32> = (0..task.context_len)
                .map(|_| rng.gen_range(0..cfg.vocab_size as u32))
                .collect();
            let expect = reference32.generate(&context, 1).tokens[0];
            let fp16 = reference16.generate(&context, 1).tokens[0];
            cluster.reset()?;
            let dfx = cluster.generate(&context, 1)?[0];
            if dfx == expect {
                dfx_agree += 1;
            }
            if fp16 == expect {
                fp16_agree += 1;
            }
        }
        results.push(AccuracyResult {
            name: task.name.clone(),
            items: task.items,
            dfx_agreement: dfx_agree as f64 / task.items as f64,
            gpu_fp16_agreement: fp16_agree as f64 / task.items as f64,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfx_matches_fp16_reference_closely_on_tiny_model() {
        let cfg = GptConfig::tiny();
        let tasks = vec![AccuracyTask {
            name: "smoke".into(),
            items: 40,
            context_len: 8,
        }];
        let results = run_accuracy(&cfg, 2, &tasks, 7).unwrap();
        let r = &results[0];
        // The paper's claim: FP16 costs (essentially) nothing. On random
        // weights agreement is high and DFX tracks the FP16 baseline.
        assert!(r.dfx_agreement > 0.9, "dfx agreement {}", r.dfx_agreement);
        assert!(
            r.delta_percent().abs() < 5.0,
            "delta {}%",
            r.delta_percent()
        );
    }

    #[test]
    fn paper_tasks_have_published_sizes() {
        let tasks = paper_tasks();
        assert_eq!(tasks[0].items, 273);
        assert_eq!(tasks[1].items, 2500);
        assert_eq!(tasks[2].items, 2500);
        assert!(quick_tasks().iter().all(|t| t.items < 300));
    }
}

//! Token-granular batched execution: the incremental executor behind
//! continuous (iteration-level) batching.
//!
//! [`Appliance::generate_batch_timed`] executes a *static* batch: every
//! member is padded to the batch's longest context and longest output,
//! and the whole batch completes as a unit. [`BatchState`] splits that
//! whole-batch run into its token steps so a serving layer can make
//! decisions *between* steps, the discipline of Orca/vLLM-style
//! continuous batching:
//!
//! - [`BatchState::admit`] joins a new member, charging its prefill
//!   (summarization) pass to the shared timeline;
//! - [`BatchState::step_token`] advances every live member by one decode
//!   token through [`dfx_core::TimingCore::time_step_batched`] at the
//!   *current* live batch size — members with different output lengths
//!   exit early instead of padding to the longest;
//! - [`BatchState::retire`] drains members that have produced their last
//!   token, freeing their slots for the next admission.
//!
//! A member that runs alone through this API costs exactly what
//! [`Appliance::generate_timed`] charges (the per-step programs are
//! identical), and each decode step produces one credited token per live
//! member, so total token work is conserved no matter how admissions and
//! early exits interleave.
//!
//! Decode steps at heterogeneous positions are charged at the *largest*
//! live position (the attention shape the hardware would pad to within
//! the step); per-member feasibility (`input_len + output_len` within
//! the model's sequence cap) is sufficient for any admission mix, unlike
//! the static path where the joint padded shape can exceed the cap even
//! when every member alone fits.

use crate::appliance::Appliance;
use crate::error::SimError;
use dfx_model::Workload;
use std::collections::HashMap;

/// Result of admitting one member into a running batch.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmitOutcome {
    /// Time the member's prefill (summarization) pass added to the
    /// shared timeline, ms. Decode of the other live members stalls for
    /// this long — the admission cost a scheduler weighs against queue
    /// wait.
    pub prefill_ms: f64,
    /// True when the prefill already produced the member's only output
    /// token (`output_len == 1`): the member never decodes and is
    /// immediately ready to [`retire`](BatchState::retire).
    pub finished: bool,
}

/// Result of one decode step over every live member.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenStepOutcome {
    /// Time the step added to the shared timeline, ms.
    pub ms: f64,
    /// Live members the step advanced — also the number of output
    /// tokens the step produced (one per live member, never padding).
    pub batch: usize,
    /// Ids of members that produced their last token in this step; they
    /// are ready to [`retire`](BatchState::retire) and no longer count
    /// as live.
    pub finished: Vec<u64>,
}

/// A member drained by [`BatchState::retire`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetiredMember {
    /// Caller-assigned id from [`BatchState::admit`].
    pub id: u64,
    /// The member's workload.
    pub workload: Workload,
    /// Output tokens the member produced — always exactly
    /// `workload.output_len`: early exit means a member stops *when it
    /// is done*, not that it is truncated.
    pub tokens: usize,
}

struct Member {
    id: u64,
    workload: Workload,
    /// Output tokens produced so far (the prefill produces the first).
    emitted: usize,
}

/// Incremental batched executor over one [`Appliance`]: the
/// token-granular API continuous batching schedules against.
///
/// Costs are charged through the same cycle model as the static paths:
/// prefills replay [`Appliance::generate_timed`]'s summarization loop,
/// decode steps run one `token_step` program through
/// [`dfx_core::TimingCore::time_step_batched`] at the live batch size.
/// Step costs are memoized by `(position, batch)` so long request
/// streams re-time each distinct step shape once.
///
/// # Examples
///
/// ```
/// use dfx_model::{GptConfig, Workload};
/// use dfx_sim::Appliance;
///
/// # fn main() -> Result<(), dfx_sim::SimError> {
/// let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
/// let mut batch = appliance.batch_state();
///
/// // Admit one member, decode a token, then admit a second mid-flight.
/// batch.admit(0, Workload::new(8, 4))?;
/// let step = batch.step_token()?;
/// assert_eq!(step.batch, 1);
/// batch.admit(1, Workload::new(4, 2))?;
/// let step = batch.step_token()?;
/// assert_eq!(step.batch, 2);
/// // The short member exits early; the long one keeps decoding.
/// assert_eq!(step.finished, vec![1]);
/// assert_eq!(batch.retire().len(), 1);
/// assert_eq!(batch.live(), 1);
/// # Ok(())
/// # }
/// ```
pub struct BatchState<'a> {
    appliance: &'a Appliance,
    members: Vec<Member>,
    finished: Vec<RetiredMember>,
    elapsed_ms: f64,
    /// Decode-step cost by `(program position, live batch)`.
    step_cache: HashMap<(usize, u32), f64>,
    /// Prefill cost by context length.
    prefill_cache: HashMap<usize, f64>,
}

impl Appliance {
    /// Creates an empty incremental batch executor over this appliance.
    ///
    /// See [`BatchState`] for the admit / step / retire cycle.
    pub fn batch_state(&self) -> BatchState<'_> {
        BatchState {
            appliance: self,
            members: Vec::new(),
            finished: Vec::new(),
            elapsed_ms: 0.0,
            step_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        }
    }
}

impl BatchState<'_> {
    /// Number of live (admitted, not yet finished) members.
    pub fn live(&self) -> usize {
        self.members.len()
    }

    /// Total time charged to the shared timeline so far, ms (prefills
    /// plus decode steps).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Admits a member: validates the workload, charges its prefill
    /// pass to the shared timeline and registers it for decode steps.
    ///
    /// The prefill replays the summarization stage of
    /// [`Appliance::generate_timed`] (every context token, LM head on
    /// the last), so a member admitted into an empty batch and stepped
    /// to completion costs exactly the sequential run. Per-member
    /// validity (`input_len + output_len` within the model cap) is the
    /// only admission constraint — there is no joint padded shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for an empty context, a
    /// workload exceeding the model's maximum sequence length, or an id
    /// already live or awaiting retirement.
    pub fn admit(&mut self, id: u64, workload: Workload) -> Result<AdmitOutcome, SimError> {
        self.appliance.check_workload(workload)?;
        if workload.output_len == 0 {
            return Err(SimError::InvalidRequest(
                "workload generates nothing (output_len == 0)".into(),
            ));
        }
        if self.members.iter().any(|m| m.id == id) || self.finished.iter().any(|m| m.id == id) {
            return Err(SimError::InvalidRequest(format!(
                "member id {id} is already in the batch"
            )));
        }

        let prefill_ms = match self.prefill_cache.get(&workload.input_len) {
            Some(&ms) => ms,
            None => {
                let mut timing = dfx_core::StepTiming::zero();
                for pos in 0..workload.input_len {
                    let lm = pos + 1 == workload.input_len;
                    let program = self.appliance.builder().token_step(pos, lm);
                    timing.accumulate(&self.appliance.timing().time_step(&program));
                }
                let ms = timing.total.to_millis();
                self.prefill_cache.insert(workload.input_len, ms);
                ms
            }
        };
        self.elapsed_ms += prefill_ms;

        // The prefill's LM head produces the first output token.
        let finished = workload.output_len == 1;
        if finished {
            self.finished.push(RetiredMember {
                id,
                workload,
                tokens: 1,
            });
        } else {
            self.members.push(Member {
                id,
                workload,
                emitted: 1,
            });
        }
        Ok(AdmitOutcome {
            prefill_ms,
            finished,
        })
    }

    /// Advances every live member by one decode token.
    ///
    /// The step runs one `token_step` program through
    /// [`dfx_core::TimingCore::time_step_batched`] at the live batch
    /// size, positioned at the largest live member's context (the
    /// attention shape the step pads to); every live member earns one
    /// output token. Members reaching their requested length are moved
    /// to the retirement list and returned in
    /// [`TokenStepOutcome::finished`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] when no members are live.
    pub fn step_token(&mut self) -> Result<TokenStepOutcome, SimError> {
        if self.members.is_empty() {
            return Err(SimError::InvalidRequest(
                "no live members to step (admit first)".into(),
            ));
        }
        let batch = self.members.len();
        // Mirrors generate_timed's decode loop: generating output token
        // `emitted + 1` runs token_step(input_len + emitted - 1, true).
        let pos = self
            .members
            .iter()
            .map(|m| m.workload.input_len + m.emitted - 1)
            .max()
            .expect("non-empty batch");
        let ms = match self.step_cache.get(&(pos, batch as u32)) {
            Some(&ms) => ms,
            None => {
                let program = self.appliance.builder().token_step(pos, true);
                let ms = self
                    .appliance
                    .timing()
                    .time_step_batched(&program, batch as u32)
                    .total
                    .to_millis();
                self.step_cache.insert((pos, batch as u32), ms);
                ms
            }
        };
        self.elapsed_ms += ms;

        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.members.len() {
            self.members[i].emitted += 1;
            if self.members[i].emitted == self.members[i].workload.output_len {
                let m = self.members.remove(i);
                finished.push(m.id);
                self.finished.push(RetiredMember {
                    id: m.id,
                    workload: m.workload,
                    tokens: m.emitted,
                });
            } else {
                i += 1;
            }
        }
        Ok(TokenStepOutcome {
            ms,
            batch,
            finished,
        })
    }

    /// Drains every member that has produced its last token, freeing
    /// their slots for subsequent admissions.
    pub fn retire(&mut self) -> Vec<RetiredMember> {
        std::mem::take(&mut self.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::GptConfig;

    fn appliance() -> Appliance {
        Appliance::timing_only(GptConfig::tiny(), 2).unwrap()
    }

    /// Runs one workload alone through the incremental API.
    fn solo_ms(a: &Appliance, w: Workload) -> f64 {
        let mut b = a.batch_state();
        b.admit(0, w).unwrap();
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        let retired = b.retire();
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].tokens, w.output_len);
        b.elapsed_ms()
    }

    #[test]
    fn a_solo_member_costs_the_sequential_run() {
        let a = appliance();
        for w in [
            Workload::new(8, 4),
            Workload::new(3, 1),
            Workload::new(5, 9),
        ] {
            let seq = a.generate_timed(w.input_len, w.output_len).unwrap();
            let inc = solo_ms(&a, w);
            assert!(
                (inc - seq.total_latency_ms()).abs() < 1e-9 * seq.total_latency_ms().max(1.0),
                "{w}: incremental {inc} vs sequential {}",
                seq.total_latency_ms()
            );
        }
    }

    #[test]
    fn token_work_is_conserved_under_interleaving() {
        let a = appliance();
        let mut b = a.batch_state();
        let ws = [
            Workload::new(8, 5),
            Workload::new(4, 2),
            Workload::new(6, 7),
        ];
        let mut tokens = 0usize;
        b.admit(0, ws[0]).unwrap();
        tokens += b.step_token().unwrap().batch;
        b.admit(1, ws[1]).unwrap();
        let mut admitted_third = false;
        while b.live() > 0 {
            tokens += b.step_token().unwrap().batch;
            if !admitted_third {
                b.admit(2, ws[2]).unwrap();
                admitted_third = true;
            }
        }
        let retired = b.retire();
        assert_eq!(retired.len(), 3);
        for r in &retired {
            assert_eq!(r.tokens, r.workload.output_len, "member {} truncated", r.id);
        }
        // One token per member per step, plus the prefill's first token.
        let expect: usize = ws.iter().map(|w| w.output_len).sum();
        assert_eq!(tokens + ws.len(), expect);
    }

    #[test]
    fn short_members_exit_before_long_ones() {
        let a = appliance();
        let mut b = a.batch_state();
        b.admit(0, Workload::new(8, 8)).unwrap();
        b.admit(1, Workload::new(8, 3)).unwrap();
        let mut exit_order = Vec::new();
        while b.live() > 0 {
            exit_order.extend(b.step_token().unwrap().finished);
        }
        assert_eq!(exit_order, vec![1, 0]);
    }

    #[test]
    fn early_exit_frees_the_short_member_before_the_padded_batch_would() {
        // In a static padded batch every member waits for the longest
        // output; through the incremental API the short member is done
        // the moment it has its own tokens.
        let a = appliance();
        let ws = [Workload::new(8, 24), Workload::new(8, 2)];
        let padded = a.generate_batch_timed(&ws).unwrap().total_latency_ms();
        let mut b = a.batch_state();
        b.admit(0, ws[0]).unwrap();
        b.admit(1, ws[1]).unwrap();
        let mut short_done_ms = None;
        while b.live() > 0 {
            let step = b.step_token().unwrap();
            if step.finished.contains(&1) {
                short_done_ms = Some(b.elapsed_ms());
            }
        }
        let short_done_ms = short_done_ms.expect("short member finished");
        assert!(
            short_done_ms < padded,
            "short member at {short_done_ms} !< padded batch {padded}"
        );
    }

    #[test]
    fn admission_is_per_member_feasible_where_static_padding_is_not() {
        // tiny's max_seq_len is 128: the pair pads past the cap as a
        // static batch but runs fine through token-granular admission.
        let a = appliance();
        let long_ctx = Workload::new(100, 2);
        let long_out = Workload::new(2, 100);
        assert!(a.generate_batch_timed(&[long_ctx, long_out]).is_err());
        let mut b = a.batch_state();
        b.admit(0, long_ctx).unwrap();
        b.admit(1, long_out).unwrap();
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        assert_eq!(b.retire().len(), 2);
    }

    #[test]
    fn invalid_admissions_are_rejected() {
        let a = appliance();
        let mut b = a.batch_state();
        assert!(matches!(
            b.admit(0, Workload::new(0, 4)),
            Err(SimError::InvalidRequest(_))
        ));
        assert!(matches!(
            b.admit(0, Workload::new(4, 0)),
            Err(SimError::InvalidRequest(_))
        ));
        assert!(matches!(
            b.admit(0, Workload::new(200, 200)),
            Err(SimError::InvalidRequest(_))
        ));
        b.admit(0, Workload::new(4, 4)).unwrap();
        assert!(matches!(
            b.admit(0, Workload::new(4, 4)),
            Err(SimError::InvalidRequest(_))
        ));
        // Stepping an empty batch is an error, not a no-op.
        let mut empty = a.batch_state();
        assert!(matches!(
            empty.step_token(),
            Err(SimError::InvalidRequest(_))
        ));
    }

    #[test]
    fn output_len_one_finishes_at_admission() {
        let a = appliance();
        let mut b = a.batch_state();
        let out = b.admit(7, Workload::new(6, 1)).unwrap();
        assert!(out.finished);
        assert!(out.prefill_ms > 0.0);
        assert_eq!(b.live(), 0);
        let retired = b.retire();
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].tokens, 1);
        // Exactly the sequential cost: generate_timed(6, 1) has no
        // generation stage either.
        let seq = a.generate_timed(6, 1).unwrap().total_latency_ms();
        assert!((b.elapsed_ms() - seq).abs() < 1e-9);
    }

    #[test]
    fn step_costs_grow_with_the_live_batch() {
        let a = appliance();
        let w = Workload::new(8, 16);
        let mut solo = a.batch_state();
        solo.admit(0, w).unwrap();
        let one = solo.step_token().unwrap().ms;
        let mut duo = a.batch_state();
        duo.admit(0, w).unwrap();
        duo.admit(1, w).unwrap();
        let two = duo.step_token().unwrap().ms;
        assert!(two > one, "batch-2 step {two} !> batch-1 step {one}");
    }
}

//! Token-granular batched execution: the incremental executor behind
//! continuous (iteration-level) batching.
//!
//! [`Appliance::generate_batch_timed`] executes a *static* batch: every
//! member is padded to the batch's longest context and longest output,
//! and the whole batch completes as a unit. [`BatchState`] splits that
//! whole-batch run into its token steps so a serving layer can make
//! decisions *between* steps, the discipline of Orca/vLLM-style
//! continuous batching:
//!
//! - [`BatchState::admit`] joins a new member, reserving its maximum
//!   K/V claim from the device's HBM budget ([`KvPool`]) and charging
//!   its prefill (summarization) pass to the shared timeline;
//! - [`BatchState::step_token`] advances every live member by one decode
//!   token through [`dfx_core::TimingCore::time_step_batched`] at the
//!   *current* live batch size — members with different output lengths
//!   exit early instead of padding to the longest;
//! - [`BatchState::retire`] drains members that have produced their last
//!   token, freeing their slots for the next admission (their K/V claim
//!   is released the moment they finish).
//!
//! A member that runs alone through this API costs exactly what
//! [`Appliance::generate_timed`] charges (the per-step programs are
//! identical), and each decode step produces one credited token per live
//! member, so total token work is conserved no matter how admissions and
//! early exits interleave.
//!
//! # Memory admission
//!
//! Each device's HBM holds the weight shard plus every live member's
//! K/V attention state (paper §IV-B), so [`admit`](BatchState::admit)
//! fails with [`SimError::Memory`] when a member's maximum claim
//! (`input_len + output_len` context positions ×
//! [`MemoryModel::kv_bytes_per_token`](dfx_hw::MemoryModel)) exceeds
//! the free budget — per-member *shape* feasibility is necessary but no
//! longer sufficient. The claim is reserved whole at admission
//! (TGI-style budgeting), so a member can never be evicted mid-decode
//! by a later admission, and it is released in full when the member
//! finishes.
//!
//! # Chunked prefill
//!
//! By default a member's whole prefill is charged at admission, stalling
//! every decoding member for the full summarization pass — on DFX the
//! dominant cost of joining a running batch. With
//! [`set_prefill_chunk`](BatchState::set_prefill_chunk), the prefill is
//! split into token-budgeted chunks interleaved with decode steps
//! (Sarathi/TGI style): each [`step_token`](BatchState::step_token)
//! advances the oldest in-flight prefill by at most the budget before
//! decoding the live members, bounding the decode stall per step by one
//! chunk instead of one whole context. Total prefill work is identical
//! (the same per-position programs run in the same order), so the
//! member produces exactly the same tokens — chunking trades nothing
//! but the interleaving. An unset (or `>= input_len`) budget reproduces
//! the unchunked path bit for bit.
//!
//! Decode steps at heterogeneous positions are charged at the *largest*
//! live position (the attention shape the hardware would pad to within
//! the step).
//!
//! # Paged K/V allocation
//!
//! With [`Appliance::with_kv_paging`] the executor swaps the reserved
//! [`KvPool`] for a [`BlockPool`](crate::BlockPool): admission takes
//! blocks for the member's *prompt* only, decode grows the block table
//! page by page, and a grow that finds the pool exhausted preempts the
//! youngest co-tenant under the configured
//! [`PreemptionPolicy`](crate::PreemptionPolicy) — recompute (the
//! victim's prefill re-runs over everything it had materialised, LM
//! head on every already-emitted position, and it resumes decoding
//! with its emitted count intact) or retain (its blocks swap to DDR,
//! charged through [`dfx_hw::DdrModel`], and stream back when capacity
//! returns). A non-zero shared-prefix length additionally routes every
//! admission through the ref-counted prefix cache, skipping both the
//! K/V bytes and the prefill compute of cached prompt blocks. The
//! reserved path stays the default and is untouched bit for bit.

use crate::appliance::Appliance;
use crate::block::{BlockPool, PagedKvConfig, PagingStats, PreemptionPolicy, Prefix};
use crate::error::SimError;
use crate::kv::KvPool;
use dfx_model::Workload;
use std::collections::BTreeMap;

/// Result of admitting one member into a running batch.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmitOutcome {
    /// Time the member's prefill pass (or, under a chunk budget, its
    /// first prefill chunk) added to the shared timeline, ms. Decode of
    /// the other live members stalls for this long — the admission cost
    /// a scheduler weighs against queue wait.
    pub prefill_ms: f64,
    /// True when the prefill already produced the member's only output
    /// token (`output_len == 1`): the member never decodes and is
    /// immediately ready to [`retire`](BatchState::retire).
    pub finished: bool,
    /// Context positions still to prefill (zero without a chunk budget:
    /// the whole pass is charged at admission). While positive, the
    /// member is live but produces no tokens; subsequent
    /// [`step_token`](BatchState::step_token)s work the remainder off
    /// one chunk at a time.
    pub pending_prefill: usize,
}

/// Result of one decode step over every live member.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenStepOutcome {
    /// Time the step added to the shared timeline, ms (a prefill chunk,
    /// if one was in flight, plus the decode pass; under paged K/V,
    /// also any preemption swaps the step forced).
    pub ms: f64,
    /// Decoding members the step advanced — also the number of output
    /// tokens the step produced for *previously running* members (one
    /// per decoding member, never padding). Under paged K/V a member
    /// preempted mid-step by a co-tenant's growth is not counted, even
    /// though the decode pass was charged at the pre-preemption batch
    /// shape (the hardware step it was padded into ran regardless).
    pub batch: usize,
    /// Ids of members that produced their last token in this step; they
    /// are ready to [`retire`](BatchState::retire) and no longer count
    /// as live.
    pub finished: Vec<u64>,
    /// Ids whose prefill completed in this step, emitting their first
    /// output token (always empty without a chunk budget).
    pub first_tokens: Vec<u64>,
    /// Ids of live members that produced *no* token this step: their
    /// prefill is still in flight (mid-chunk or queued behind another
    /// member's) or — under paged K/V — they are preempted, parked in
    /// DDR, or were resumed this step. Always empty without a chunk
    /// budget on the reserved path.
    pub prefilling: Vec<u64>,
}

/// A member drained by [`BatchState::retire`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetiredMember {
    /// Caller-assigned id from [`BatchState::admit`].
    pub id: u64,
    /// The member's workload.
    pub workload: Workload,
    /// Output tokens the member produced — always exactly
    /// `workload.output_len` when drained by
    /// [`BatchState::retire`]: early exit means a member stops *when it
    /// is done*, not that it is truncated. Only
    /// [`BatchState::cancel`] returns fewer: the tokens produced before
    /// the cancellation.
    pub tokens: usize,
}

struct Member {
    id: u64,
    workload: Workload,
    /// Context positions prefilled so far (`== prefill_target` once the
    /// member decodes).
    prefilled: usize,
    /// Positions the member must have materialised before it can
    /// decode. `input_len` normally; after a recompute preemption,
    /// everything it had written (`input_len + emitted − 1`), since the
    /// generated positions' K/V must come back too.
    prefill_target: usize,
    /// Output tokens produced so far (completing the prefill produces
    /// the first).
    emitted: usize,
    /// Tokens swapped out to DDR by a retain preemption (`None` when
    /// resident). A parked member holds no HBM blocks and makes no
    /// progress until swapped back in.
    parked: Option<usize>,
}

impl Member {
    fn decoding(&self) -> bool {
        self.parked.is_none() && self.prefilled == self.prefill_target
    }
}

/// The K/V allocator behind a [`BatchState`]: the reserved max-claim
/// [`KvPool`] (the default) or the paged [`BlockPool`].
enum KvBacking {
    Reserved(KvPool),
    Paged { pool: BlockPool, cfg: PagedKvConfig },
}

impl KvBacking {
    fn release(&mut self, id: u64) {
        match self {
            KvBacking::Reserved(pool) => {
                pool.release(id);
            }
            KvBacking::Paged { pool, .. } => {
                pool.release(id);
            }
        }
    }
}

/// A read-only view of a [`BatchState`]'s K/V allocator that works for
/// both backings. Token-granular figures are reported at each backing's
/// own commitment granularity: whole claims for the reserved
/// [`KvPool`], whole blocks for the paged [`BlockPool`].
pub struct KvView<'a> {
    backing: &'a KvBacking,
}

impl KvView<'_> {
    /// Tokens of capacity committed (reserved: live claims; paged:
    /// blocks neither free nor idle-cached).
    pub fn committed_tokens(&self) -> usize {
        match self.backing {
            KvBacking::Reserved(pool) => pool.committed_tokens(),
            KvBacking::Paged { pool, .. } => pool.committed_tokens(),
        }
    }

    /// Tokens still available to admissions and growth.
    pub fn free_tokens(&self) -> usize {
        match self.backing {
            KvBacking::Reserved(pool) => pool.free_tokens(),
            KvBacking::Paged { pool, .. } => pool.free_tokens(),
        }
    }

    /// Context positions actually materialised across live leases.
    pub fn used_tokens(&self) -> usize {
        match self.backing {
            KvBacking::Reserved(pool) => pool.used_tokens(),
            KvBacking::Paged { pool, .. } => pool.used_tokens(),
        }
    }

    /// Number of live leases.
    pub fn live(&self) -> usize {
        match self.backing {
            KvBacking::Reserved(pool) => pool.live(),
            KvBacking::Paged { pool, .. } => pool.live(),
        }
    }

    /// The capacity model the allocator budgets against.
    pub fn memory(&self) -> &dfx_hw::MemoryModel {
        match self.backing {
            KvBacking::Reserved(pool) => pool.memory(),
            KvBacking::Paged { pool, .. } => pool.memory(),
        }
    }

    /// The reserved pool, when that backing is active.
    pub fn reserved(&self) -> Option<&KvPool> {
        match self.backing {
            KvBacking::Reserved(pool) => Some(pool),
            KvBacking::Paged { .. } => None,
        }
    }

    /// The block pool, when paged K/V is active.
    pub fn paged(&self) -> Option<&BlockPool> {
        match self.backing {
            KvBacking::Reserved(_) => None,
            KvBacking::Paged { pool, .. } => Some(pool),
        }
    }
}

/// Incremental batched executor over one [`Appliance`]: the
/// token-granular API continuous batching schedules against.
///
/// Costs are charged through the same cycle model as the static paths:
/// prefills replay [`Appliance::generate_timed`]'s summarization loop,
/// decode steps run one `token_step` program through
/// [`dfx_core::TimingCore::time_step_batched`] at the live batch size.
/// Step costs are memoized by `(position, batch)` so long request
/// streams re-time each distinct step shape once. Admission reserves
/// each member's maximum K/V claim from the appliance's
/// [`memory_model`](Appliance::memory_model) budget and fails with
/// [`SimError::Memory`] when it does not fit.
///
/// # Examples
///
/// ```
/// use dfx_model::{GptConfig, Workload};
/// use dfx_sim::Appliance;
///
/// # fn main() -> Result<(), dfx_sim::SimError> {
/// let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
/// let mut batch = appliance.batch_state();
///
/// // Admit one member, decode a token, then admit a second mid-flight.
/// batch.admit(0, Workload::new(8, 4))?;
/// let step = batch.step_token()?;
/// assert_eq!(step.batch, 1);
/// batch.admit(1, Workload::new(4, 2))?;
/// let step = batch.step_token()?;
/// assert_eq!(step.batch, 2);
/// // The short member exits early; the long one keeps decoding.
/// assert_eq!(step.finished, vec![1]);
/// assert_eq!(batch.retire().len(), 1);
/// assert_eq!(batch.live(), 1);
/// # Ok(())
/// # }
/// ```
pub struct BatchState<'a> {
    appliance: &'a Appliance,
    members: Vec<Member>,
    finished: Vec<RetiredMember>,
    elapsed_ms: f64,
    /// The K/V allocator over the appliance's per-device HBM budget
    /// (reserved claims by default; paged blocks under
    /// [`Appliance::with_kv_paging`]).
    kv: KvBacking,
    /// Prefill chunk budget in tokens (`None`: whole-prefill admission).
    prefill_chunk: Option<usize>,
    /// Decode-step cost by `(program position, live batch)`.
    step_cache: BTreeMap<(usize, u32), f64>,
    /// Whole-prefill cost by context length.
    prefill_cache: BTreeMap<usize, f64>,
    /// Per-position prefill step cycles by `(position, lm_head)` (the
    /// chunked path's memo; chunk costs sum these like the unchunked
    /// pass sums its positions).
    pos_cycles: BTreeMap<(usize, bool), dfx_hw::Cycles>,
}

impl Appliance {
    /// Creates an empty incremental batch executor over this appliance,
    /// with a K/V allocator sized by
    /// [`memory_model`](Appliance::memory_model): a [`KvPool`] by
    /// default, a [`BlockPool`] under
    /// [`with_kv_paging`](Appliance::with_kv_paging).
    ///
    /// See [`BatchState`] for the admit / step / retire cycle.
    pub fn batch_state(&self) -> BatchState<'_> {
        BatchState {
            appliance: self,
            members: Vec::new(),
            finished: Vec::new(),
            elapsed_ms: 0.0,
            kv: match self.kv_paging() {
                Some(&cfg) => KvBacking::Paged {
                    pool: BlockPool::new(self.memory_model(), cfg.block_tokens),
                    cfg,
                },
                None => KvBacking::Reserved(KvPool::new(self.memory_model())),
            },
            prefill_chunk: None,
            step_cache: BTreeMap::new(),
            prefill_cache: BTreeMap::new(),
            pos_cycles: BTreeMap::new(),
        }
    }
}

impl BatchState<'_> {
    /// Number of live (admitted, not yet finished) members, including
    /// members whose chunked prefill is still in flight.
    pub fn live(&self) -> usize {
        self.members.len()
    }

    /// Total time charged to the shared timeline so far, ms (prefills
    /// plus decode steps).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// The K/V allocator: inspect committed/free budget from outside
    /// (both backings answer through the same [`KvView`]).
    pub fn kv(&self) -> KvView<'_> {
        KvView { backing: &self.kv }
    }

    /// Paged-K/V run counters, when paged allocation is active.
    pub fn paging_stats(&self) -> Option<PagingStats> {
        match &self.kv {
            KvBacking::Reserved(_) => None,
            KvBacking::Paged { pool, .. } => Some(pool.stats()),
        }
    }

    /// Sets the prefill chunk budget: admissions charge at most `chunk`
    /// context positions up front and later [`step_token`]s interleave
    /// the remainder with decode, one chunk per step. `None` (the
    /// default) restores whole-prefill admission; a budget at or above
    /// a member's `input_len` is equivalent to it for that member.
    /// Clearing the budget while a chunked prefill is in flight is
    /// allowed: the next step finishes that prefill in one whole chunk.
    ///
    /// [`step_token`]: BatchState::step_token
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is `Some(0)`.
    pub fn set_prefill_chunk(&mut self, chunk: Option<usize>) {
        assert!(chunk != Some(0), "a prefill chunk must be at least 1 token");
        self.prefill_chunk = chunk;
    }

    /// Estimated cost of the full prefill pass over `input_len` context
    /// tokens, ms — the serial stall an unchunked admission would add to
    /// the shared timeline. Charges nothing; memoized with the admission
    /// path's cache.
    pub fn prefill_cost_ms(&mut self, input_len: usize) -> f64 {
        if input_len == 0 {
            return 0.0;
        }
        match self.prefill_cache.get(&input_len) {
            Some(&ms) => ms,
            None => {
                let mut timing = dfx_core::StepTiming::zero();
                for pos in 0..input_len {
                    let lm = pos + 1 == input_len;
                    let program = self.appliance.builder().token_step(pos, lm);
                    timing.accumulate(&self.appliance.timing().time_step(&program));
                }
                let ms = timing.total.to_millis();
                self.prefill_cache.insert(input_len, ms);
                ms
            }
        }
    }

    /// Estimated cost of one decode step at a hypothetical live batch of
    /// `batch` members, ms, positioned at the current largest live
    /// context (or the first decode position when the batch is empty).
    /// Charges nothing; memoized with the decode path's cache.
    pub fn decode_step_cost_ms(&mut self, batch: usize) -> f64 {
        let pos = self
            .members
            .iter()
            .filter(|m| m.decoding())
            .map(|m| m.workload.input_len + m.emitted - 1)
            .max()
            .unwrap_or(1);
        self.decode_cost(pos, batch.max(1))
    }

    fn decode_cost(&mut self, pos: usize, batch: usize) -> f64 {
        match self.step_cache.get(&(pos, batch as u32)) {
            Some(&ms) => ms,
            None => {
                let program = self.appliance.builder().token_step(pos, true);
                let ms = self
                    .appliance
                    .timing()
                    .time_step_batched(&program, batch as u32)
                    .total
                    .to_millis();
                self.step_cache.insert((pos, batch as u32), ms);
                ms
            }
        }
    }

    /// Cycles of one prefill position step (memoized for the chunked
    /// path).
    fn prefill_pos_cycles(&mut self, pos: usize, lm: bool) -> dfx_hw::Cycles {
        match self.pos_cycles.get(&(pos, lm)) {
            Some(&c) => c,
            None => {
                let program = self.appliance.builder().token_step(pos, lm);
                let c = self.appliance.timing().time_step(&program).total;
                self.pos_cycles.insert((pos, lm), c);
                c
            }
        }
    }

    /// Charges positions `from..to` of `workload`'s prefill (LM head on
    /// the context's last position and on every generated position — the
    /// latter only arise when a recompute preemption replays decode
    /// output), returning the chunk's cost in ms.
    fn charge_prefill_chunk(&mut self, workload: Workload, from: usize, to: usize) -> f64 {
        let mut cycles = dfx_hw::Cycles::ZERO;
        for pos in from..to {
            let lm = pos + 1 >= workload.input_len;
            cycles += self.prefill_pos_cycles(pos, lm);
        }
        let ms = cycles.to_millis();
        self.elapsed_ms += ms;
        ms
    }

    /// Moves a member to the finished list, releasing its K/V lease.
    fn finish(&mut self, member: Member) {
        self.kv.release(member.id);
        self.finished.push(RetiredMember {
            id: member.id,
            workload: member.workload,
            tokens: member.emitted,
        });
    }

    /// Cancels live member `id` mid-flight — mid-prefill, parked, or
    /// decoding — releasing its whole K/V lease immediately (a lease is
    /// freed in full however a member exits; see
    /// [`KvPool::release`]). The member is returned with the tokens it
    /// actually produced and is *not* queued for
    /// [`retire`](BatchState::retire); its id becomes reusable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for an id that is not live.
    pub fn cancel(&mut self, id: u64) -> Result<RetiredMember, SimError> {
        let i = self
            .members
            .iter()
            .position(|m| m.id == id)
            .ok_or_else(|| {
                SimError::InvalidRequest(format!("member {id} is not live, nothing to cancel"))
            })?;
        let member = self.members.remove(i);
        self.kv.release(member.id);
        Ok(RetiredMember {
            id: member.id,
            workload: member.workload,
            tokens: member.emitted,
        })
    }

    /// Admits a member: validates the workload, reserves its maximum
    /// K/V claim from the HBM budget, charges its prefill pass (or its
    /// first chunk, under [`set_prefill_chunk`]) to the shared timeline
    /// and registers it for decode steps.
    ///
    /// The unchunked prefill replays the summarization stage of
    /// [`Appliance::generate_timed`] (every context token, LM head on
    /// the last), so a member admitted into an empty batch and stepped
    /// to completion costs exactly the sequential run. Admission
    /// requires per-member validity (`input_len + output_len` within the
    /// model cap — there is no joint padded shape) *and* a K/V claim of
    /// `input_len + output_len` tokens within the free HBM budget.
    ///
    /// [`set_prefill_chunk`]: BatchState::set_prefill_chunk
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for an empty context, a
    /// workload exceeding the model's maximum sequence length, or an id
    /// already live or awaiting retirement; [`SimError::Memory`] when
    /// the K/V claim exceeds the free budget.
    pub fn admit(&mut self, id: u64, workload: Workload) -> Result<AdmitOutcome, SimError> {
        self.appliance.check_workload(workload)?;
        if workload.output_len == 0 {
            return Err(SimError::InvalidRequest(
                "workload generates nothing (output_len == 0)".into(),
            ));
        }
        if self.members.iter().any(|m| m.id == id) || self.finished.iter().any(|m| m.id == id) {
            return Err(SimError::InvalidRequest(format!(
                "member id {id} is already in the batch"
            )));
        }
        let chunk = self.prefill_chunk.unwrap_or(usize::MAX);
        if let KvBacking::Paged { pool, cfg } = &mut self.kv {
            // Paged admission: blocks for the first prefill chunk only,
            // with cached prefix blocks attached for free. The prompt
            // cap of `input_len − 1` guarantees at least one computed
            // position — the LM head that emits the first token.
            let prefix = (cfg.shared_prefix_tokens > 0).then(|| Prefix {
                key: 0,
                tokens: cfg.shared_prefix_tokens.min(workload.input_len - 1),
            });
            let hits = prefix.map_or(0, |p| pool.prefix_hits(p));
            let first_computed = chunk.min(workload.input_len - hits);
            let hit = pool.admit(
                id,
                workload.input_len + workload.output_len,
                first_computed,
                prefix,
            )?;
            debug_assert_eq!(hit, hits);
            let prefilled = hit + first_computed;
            let prefill_ms = self.charge_prefill_chunk(workload, hit, prefilled);
            if prefilled < workload.input_len {
                self.members.push(Member {
                    id,
                    workload,
                    prefilled,
                    prefill_target: workload.input_len,
                    emitted: 0,
                    parked: None,
                });
                return Ok(AdmitOutcome {
                    prefill_ms,
                    finished: false,
                    pending_prefill: workload.input_len - prefilled,
                });
            }
            let finished = workload.output_len == 1;
            let member = Member {
                id,
                workload,
                prefilled,
                prefill_target: workload.input_len,
                emitted: 1,
                parked: None,
            };
            if finished {
                self.finish(member);
            } else {
                self.members.push(member);
            }
            return Ok(AdmitOutcome {
                prefill_ms,
                finished,
                pending_prefill: 0,
            });
        }

        let KvBacking::Reserved(pool) = &mut self.kv else {
            // The paged arm admits and returns above; reaching this
            // point on a paged backing is a bug worth surfacing, not
            // aborting the whole process for.
            return Err(SimError::Service(
                "paged K/V admission fell through to the reserved path".into(),
            ));
        };
        pool.reserve(id, workload.input_len + workload.output_len)?;

        if chunk < workload.input_len {
            // Chunked admission: charge the first chunk only; the rest
            // interleaves with decode steps.
            let prefill_ms = self.charge_prefill_chunk(workload, 0, chunk);
            self.kv_grow(id, chunk)?;
            self.members.push(Member {
                id,
                workload,
                prefilled: chunk,
                prefill_target: workload.input_len,
                emitted: 0,
                parked: None,
            });
            return Ok(AdmitOutcome {
                prefill_ms,
                finished: false,
                pending_prefill: workload.input_len - chunk,
            });
        }

        let prefill_ms = self.prefill_cost_ms(workload.input_len);
        self.elapsed_ms += prefill_ms;
        self.kv_grow(id, workload.input_len)?;

        // The prefill's LM head produces the first output token.
        let finished = workload.output_len == 1;
        let member = Member {
            id,
            workload,
            prefilled: workload.input_len,
            prefill_target: workload.input_len,
            emitted: 1,
            parked: None,
        };
        if finished {
            self.finish(member);
        } else {
            self.members.push(member);
        }
        Ok(AdmitOutcome {
            prefill_ms,
            finished,
            pending_prefill: 0,
        })
    }

    /// Grows member `id`'s reserved lease (the reserved backing's write
    /// path; paged growth goes through
    /// [`make_room`](BatchState::make_room) + `BlockPool::write`).
    fn kv_grow(&mut self, id: u64, tokens: usize) -> Result<(), SimError> {
        match &mut self.kv {
            KvBacking::Reserved(pool) => pool.grow(id, tokens),
            KvBacking::Paged { pool, .. } => pool.write(id, tokens),
        }
    }

    /// Advances the batch by one step: works one chunk of the oldest
    /// in-flight prefill (if any — see
    /// [`set_prefill_chunk`](BatchState::set_prefill_chunk)), then
    /// advances every decoding member by one output token.
    ///
    /// The decode pass runs one `token_step` program through
    /// [`dfx_core::TimingCore::time_step_batched`] at the decoding batch
    /// size, positioned at the largest decoding member's context (the
    /// attention shape the step pads to); every decoding member earns
    /// one output token, and a member completing its prefill earns its
    /// first. Members reaching their requested length are moved to the
    /// retirement list (releasing their K/V claim) and returned in
    /// [`TokenStepOutcome::finished`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] when no members are live.
    pub fn step_token(&mut self) -> Result<TokenStepOutcome, SimError> {
        if self.members.is_empty() {
            return Err(SimError::InvalidRequest(
                "no live members to step (admit first)".into(),
            ));
        }
        let mut ms = 0.0;
        let mut first_tokens = Vec::new();
        let mut finished = Vec::new();
        // Members that made paged-only progress this step (a swap back
        // in, or a recompute catching up): live, but no token earned.
        let mut resumed: Vec<u64> = Vec::new();

        // Swap the oldest parked member back in once its footprint fits
        // again (the paged retain policy; charged as a DDR transfer).
        if let KvBacking::Paged { pool, .. } = &mut self.kv {
            let oldest_parked = self
                .members
                .iter()
                .enumerate()
                .find_map(|(i, m)| m.parked.map(|p| (i, p)));
            if let Some((i, swapped)) = oldest_parked {
                let id = self.members[i].id;
                if pool.can_write(id, swapped) {
                    pool.restore(id, swapped)?;
                    let bytes = pool.memory().kv_claim_bytes(swapped);
                    let swap_ms = dfx_hw::DdrModel::default()
                        .transfer_cycles(bytes)
                        .to_millis();
                    ms += swap_ms;
                    self.elapsed_ms += swap_ms;
                    self.members[i].parked = None;
                    resumed.push(id);
                }
            }
        }

        // One chunk of the oldest active in-flight prefill that fits.
        //
        // On the paged backing a prefill chunk only runs when its blocks
        // are already free: growing a prefill never preempts a decoding
        // member, because two recompute victims could then evict each
        // other's re-prefill forever without either earning a token.
        // A chunk that does not fit simply waits for decoders to retire
        // and release blocks. The one exception: when no member can make
        // progress any other way (nothing decodes, nothing resumed), the
        // oldest pending prefill runs anyway and preempts co-tenants as
        // a last resort — solo-fit admission guarantees it completes
        // even if it ends up holding the pool alone.
        //
        // A budget cleared mid-flight finishes the pending prefill in
        // one whole chunk.
        let chunk = self.prefill_chunk.unwrap_or(usize::MAX);
        let candidates: Vec<usize> = (0..self.members.len())
            .filter(|&i| {
                let m = &self.members[i];
                m.parked.is_none() && !m.decoding() && !resumed.contains(&m.id)
            })
            .collect();
        let mut chosen: Option<(usize, bool)> = None;
        for &i in &candidates {
            let (id, target) = (self.members[i].id, self.members[i].prefill_target);
            // A recompute victim restarting from zero re-attaches any
            // still-cached prefix blocks before recomputing the rest.
            if self.members[i].prefilled == 0 {
                if let KvBacking::Paged { pool, .. } = &mut self.kv {
                    let hit = pool.attach_cached_prefix(id, target)?;
                    self.members[i].prefilled = hit;
                }
            }
            let from = self.members[i].prefilled;
            let to = from.saturating_add(chunk).min(target);
            let fits = match &self.kv {
                KvBacking::Reserved(_) => true,
                KvBacking::Paged { pool, .. } => pool.can_write(id, to - from),
            };
            if fits {
                chosen = Some((i, false));
                break;
            }
        }
        if chosen.is_none() && !candidates.is_empty() {
            let any_runnable = self
                .members
                .iter()
                .any(|m| m.parked.is_none() && m.prefilled == m.prefill_target);
            if !any_runnable {
                chosen = Some((candidates[0], true));
            }
        }
        if let Some((i, force)) = chosen {
            let (id, workload) = {
                let m = &self.members[i];
                (m.id, m.workload)
            };
            let target = self.members[i].prefill_target;
            let from = self.members[i].prefilled;
            let to = from.saturating_add(chunk).min(target);
            if force {
                ms += self.make_room(id, to - from)?;
            }
            ms += self.charge_prefill_chunk(workload, from, to);
            self.kv_grow(id, to - from)?;
            let m = &mut self.members[i];
            m.prefilled = to;
            if m.decoding() {
                if m.emitted == 0 {
                    m.emitted = 1;
                    first_tokens.push(id);
                    if m.workload.output_len == 1 {
                        finished.push(id);
                        let m = self.members.remove(i);
                        self.finish(m);
                    }
                } else {
                    // A recompute caught back up: its K/V is whole
                    // again, but every token over these positions was
                    // already emitted before the preemption.
                    resumed.push(id);
                }
            }
        }

        // One decode pass over the members that were already decoding at
        // the step's start (a member completing its prefill above joins
        // from the next step; a member resumed above likewise).
        let decoding: Vec<u64> = self
            .members
            .iter()
            .filter(|m| m.decoding() && !first_tokens.contains(&m.id) && !resumed.contains(&m.id))
            .map(|m| m.id)
            .collect();
        if !decoding.is_empty() {
            // Mirrors generate_timed's decode loop: generating output
            // token `emitted + 1` runs token_step(input_len + emitted - 1).
            let pos = self
                .members
                .iter()
                .filter(|m| decoding.contains(&m.id))
                .map(|m| m.workload.input_len + m.emitted - 1)
                .fold(0, usize::max);
            let step_ms = self.decode_cost(pos, decoding.len());
            ms += step_ms;
            self.elapsed_ms += step_ms;
        }

        let mut advanced: Vec<u64> = Vec::new();
        let mut i = 0;
        while i < self.members.len() {
            let id = self.members[i].id;
            // Skip members outside the snapshot — and, paged only,
            // snapshot members preempted mid-step by an earlier
            // member's growth (the charged decode pass ran at the
            // pre-preemption shape; the victim just earns nothing).
            if !decoding.contains(&id) || !self.members[i].decoding() {
                i += 1;
                continue;
            }
            // lint: order-sensitive — simulated-clock accumulation
            ms += self.make_room(id, 1)?;
            self.kv_grow(id, 1)?;
            self.members[i].emitted += 1;
            advanced.push(id);
            if self.members[i].emitted == self.members[i].workload.output_len {
                let m = self.members.remove(i);
                finished.push(m.id);
                self.finish(m);
            } else {
                i += 1;
            }
        }
        let prefilling: Vec<u64> = self
            .members
            .iter()
            .filter(|m| !advanced.contains(&m.id) && !first_tokens.contains(&m.id))
            .map(|m| m.id)
            .collect();
        Ok(TokenStepOutcome {
            ms,
            batch: advanced.len(),
            finished,
            first_tokens,
            prefilling,
        })
    }

    /// Ensures member `grower` can write `tokens` more positions on the
    /// paged backing, evicting the youngest block-holding co-tenant at
    /// a time under the configured [`PreemptionPolicy`] until the write
    /// fits. Decode growth calls this every token; prefill growth only
    /// as a last resort (see [`step_token`](BatchState::step_token) —
    /// an evicting prefill invites recompute livelock). Returns the DDR
    /// swap time charged (retain policy only); a no-op returning 0 on
    /// the reserved backing, where admission reserved the whole claim
    /// up front.
    fn make_room(&mut self, grower: u64, tokens: usize) -> Result<f64, SimError> {
        let mut ms = 0.0;
        loop {
            let KvBacking::Paged { pool, cfg } = &mut self.kv else {
                return Ok(ms);
            };
            if pool.can_write(grower, tokens) {
                return Ok(ms);
            }
            let Some(i) = self.members.iter().rposition(|m| {
                m.id != grower
                    && m.parked.is_none()
                    && pool.lease_blocks(m.id).is_some_and(|(o, s)| o + s > 0)
            }) else {
                // Unreachable when every admission was solo-feasible:
                // a lone block-holder can always reach its own claim.
                return Err(SimError::Memory(format!(
                    "the block pool cannot make room for member {grower}: \
                     no preemptible co-tenant holds blocks"
                )));
            };
            let policy = cfg.policy;
            let victim = &mut self.members[i];
            let (used, owned) = pool.evict(victim.id)?;
            match policy {
                PreemptionPolicy::Recompute => {
                    // The victim restarts its prefill over everything it
                    // had materialised: its prompt plus the K/V of every
                    // token it already emitted.
                    victim.prefilled = 0;
                    victim.prefill_target =
                        victim.workload.input_len + victim.emitted.saturating_sub(1);
                }
                PreemptionPolicy::Retain => {
                    pool.record_swap_out();
                    victim.parked = Some(used);
                    let bytes = pool.memory().kv_claim_bytes(owned * pool.block_tokens());
                    let swap_ms = dfx_hw::DdrModel::default()
                        .transfer_cycles(bytes)
                        .to_millis();
                    // lint: order-sensitive — simulated-clock accumulation
                    ms += swap_ms;
                    // lint: order-sensitive — simulated-clock accumulation
                    self.elapsed_ms += swap_ms;
                }
            }
        }
    }

    /// Block-granular feasibility of a hypothetical resident set, for
    /// the serving layer's admission probe: `None` on the reserved
    /// backing (the caller falls back to summing whole claims),
    /// `Some(fits)` on the paged one. `members` is the would-be
    /// resident set — live members are matched off by workload.
    ///
    /// The policy is *half-funded outputs*: prompts are funded in full
    /// (a joiner needs blocks for its whole prompt minus its cached
    /// prefix blocks; a resident keeps its remaining prefill demand),
    /// but only half of each member's future decode growth is budgeted
    /// up front. A member's expected K/V footprint over its decode is
    /// `input + output/2` — short-output members finish and free blocks
    /// that fund the long tail — so this packs measurably more members
    /// than max-claim reservation while keeping preemption the rare
    /// case rather than the steady state.
    pub fn resident_kv_fits(&self, members: &[Workload]) -> Option<bool> {
        let KvBacking::Paged { pool, cfg } = &self.kv else {
            return None;
        };
        let mut live: Vec<Workload> = self.members.iter().map(|m| m.workload).collect();
        let mut need = 0usize;
        for &w in members {
            if let Some(i) = live.iter().position(|&l| l == w) {
                live.swap_remove(i);
                continue;
            }
            let claim = w.input_len + w.output_len;
            if claim == 0 || pool.blocks_for(claim) > pool.total_blocks() {
                return Some(false);
            }
            let hit_blocks = if cfg.shared_prefix_tokens > 0 {
                pool.prefix_hits(Prefix {
                    key: 0,
                    tokens: cfg.shared_prefix_tokens.min(w.input_len.saturating_sub(1)),
                }) / pool.block_tokens()
            } else {
                0
            };
            let prompt_blocks = pool.blocks_for(w.input_len);
            let growth = pool.blocks_for(claim).saturating_sub(prompt_blocks);
            need += prompt_blocks.saturating_sub(hit_blocks) + growth.div_ceil(2);
        }
        let mut pending = 0usize;
        for m in &self.members {
            let held = pool.lease_blocks(m.id).map_or(0, |(o, s)| o + s);
            let prefill_blocks = pool.blocks_for(m.prefill_target);
            let claim_blocks = pool.blocks_for(m.workload.input_len + m.workload.output_len);
            let growth = claim_blocks.saturating_sub(prefill_blocks.max(held));
            pending += prefill_blocks.saturating_sub(held) + growth.div_ceil(2);
        }
        Some(need + pending <= pool.available_blocks())
    }

    /// Drains every member that has produced its last token, freeing
    /// their slots for subsequent admissions (their K/V claims were
    /// released the moment they finished).
    pub fn retire(&mut self) -> Vec<RetiredMember> {
        std::mem::take(&mut self.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::GptConfig;

    fn appliance() -> Appliance {
        Appliance::timing_only(GptConfig::tiny(), 2).unwrap()
    }

    /// Runs one workload alone through the incremental API.
    fn solo_ms(a: &Appliance, w: Workload) -> f64 {
        let mut b = a.batch_state();
        b.admit(0, w).unwrap();
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        let retired = b.retire();
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].tokens, w.output_len);
        b.elapsed_ms()
    }

    #[test]
    fn a_solo_member_costs_the_sequential_run() {
        let a = appliance();
        for w in [
            Workload::new(8, 4),
            Workload::new(3, 1),
            Workload::new(5, 9),
        ] {
            let seq = a.generate_timed(w.input_len, w.output_len).unwrap();
            let inc = solo_ms(&a, w);
            assert!(
                (inc - seq.total_latency_ms()).abs() < 1e-9 * seq.total_latency_ms().max(1.0),
                "{w}: incremental {inc} vs sequential {}",
                seq.total_latency_ms()
            );
        }
    }

    #[test]
    fn token_work_is_conserved_under_interleaving() {
        let a = appliance();
        let mut b = a.batch_state();
        let ws = [
            Workload::new(8, 5),
            Workload::new(4, 2),
            Workload::new(6, 7),
        ];
        let mut tokens = 0usize;
        b.admit(0, ws[0]).unwrap();
        tokens += b.step_token().unwrap().batch;
        b.admit(1, ws[1]).unwrap();
        let mut admitted_third = false;
        while b.live() > 0 {
            tokens += b.step_token().unwrap().batch;
            if !admitted_third {
                b.admit(2, ws[2]).unwrap();
                admitted_third = true;
            }
        }
        let retired = b.retire();
        assert_eq!(retired.len(), 3);
        for r in &retired {
            assert_eq!(r.tokens, r.workload.output_len, "member {} truncated", r.id);
        }
        // One token per member per step, plus the prefill's first token.
        let expect: usize = ws.iter().map(|w| w.output_len).sum();
        assert_eq!(tokens + ws.len(), expect);
    }

    #[test]
    fn short_members_exit_before_long_ones() {
        let a = appliance();
        let mut b = a.batch_state();
        b.admit(0, Workload::new(8, 8)).unwrap();
        b.admit(1, Workload::new(8, 3)).unwrap();
        let mut exit_order = Vec::new();
        while b.live() > 0 {
            exit_order.extend(b.step_token().unwrap().finished);
        }
        assert_eq!(exit_order, vec![1, 0]);
    }

    #[test]
    fn early_exit_frees_the_short_member_before_the_padded_batch_would() {
        // In a static padded batch every member waits for the longest
        // output; through the incremental API the short member is done
        // the moment it has its own tokens.
        let a = appliance();
        let ws = [Workload::new(8, 24), Workload::new(8, 2)];
        let padded = a.generate_batch_timed(&ws).unwrap().total_latency_ms();
        let mut b = a.batch_state();
        b.admit(0, ws[0]).unwrap();
        b.admit(1, ws[1]).unwrap();
        let mut short_done_ms = None;
        while b.live() > 0 {
            let step = b.step_token().unwrap();
            if step.finished.contains(&1) {
                short_done_ms = Some(b.elapsed_ms());
            }
        }
        let short_done_ms = short_done_ms.expect("short member finished");
        assert!(
            short_done_ms < padded,
            "short member at {short_done_ms} !< padded batch {padded}"
        );
    }

    #[test]
    fn admission_is_per_member_feasible_where_static_padding_is_not() {
        // tiny's max_seq_len is 128: the pair pads past the cap as a
        // static batch but runs fine through token-granular admission.
        let a = appliance();
        let long_ctx = Workload::new(100, 2);
        let long_out = Workload::new(2, 100);
        assert!(a.generate_batch_timed(&[long_ctx, long_out]).is_err());
        let mut b = a.batch_state();
        b.admit(0, long_ctx).unwrap();
        b.admit(1, long_out).unwrap();
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        assert_eq!(b.retire().len(), 2);
    }

    #[test]
    fn invalid_admissions_are_rejected() {
        let a = appliance();
        let mut b = a.batch_state();
        assert!(matches!(
            b.admit(0, Workload::new(0, 4)),
            Err(SimError::InvalidRequest(_))
        ));
        assert!(matches!(
            b.admit(0, Workload::new(4, 0)),
            Err(SimError::InvalidRequest(_))
        ));
        assert!(matches!(
            b.admit(0, Workload::new(200, 200)),
            Err(SimError::InvalidRequest(_))
        ));
        b.admit(0, Workload::new(4, 4)).unwrap();
        assert!(matches!(
            b.admit(0, Workload::new(4, 4)),
            Err(SimError::InvalidRequest(_))
        ));
        // Stepping an empty batch is an error, not a no-op.
        let mut empty = a.batch_state();
        assert!(matches!(
            empty.step_token(),
            Err(SimError::InvalidRequest(_))
        ));
    }

    #[test]
    fn output_len_one_finishes_at_admission() {
        let a = appliance();
        let mut b = a.batch_state();
        let out = b.admit(7, Workload::new(6, 1)).unwrap();
        assert!(out.finished);
        assert!(out.prefill_ms > 0.0);
        assert_eq!(out.pending_prefill, 0);
        assert_eq!(b.live(), 0);
        let retired = b.retire();
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].tokens, 1);
        // Exactly the sequential cost: generate_timed(6, 1) has no
        // generation stage either.
        let seq = a.generate_timed(6, 1).unwrap().total_latency_ms();
        assert!((b.elapsed_ms() - seq).abs() < 1e-9);
    }

    #[test]
    fn step_costs_grow_with_the_live_batch() {
        let a = appliance();
        let w = Workload::new(8, 16);
        let mut solo = a.batch_state();
        solo.admit(0, w).unwrap();
        let one = solo.step_token().unwrap().ms;
        let mut duo = a.batch_state();
        duo.admit(0, w).unwrap();
        duo.admit(1, w).unwrap();
        let two = duo.step_token().unwrap().ms;
        assert!(two > one, "batch-2 step {two} !> batch-1 step {one}");
    }

    // --- K/V capacity admission ------------------------------------

    /// An appliance whose HBM holds the weight shard plus `tokens` of
    /// K/V claim.
    fn capped(tokens: u64) -> Appliance {
        let a = appliance();
        let m = a.memory_model();
        appliance()
            .with_hbm_capacity(m.weight_bytes + tokens * m.kv_bytes_per_token)
            .unwrap()
    }

    #[test]
    fn admission_fails_when_the_kv_claim_exceeds_free_hbm() {
        // Budget for 20 tokens: one 8+4 member fits, a second does not
        // until the first finishes.
        let a = capped(20);
        let mut b = a.batch_state();
        b.admit(0, Workload::new(8, 4)).unwrap();
        assert_eq!(b.kv().committed_tokens(), 12);
        let err = b.admit(1, Workload::new(8, 4)).unwrap_err();
        assert!(matches!(err, SimError::Memory(_)), "{err:?}");
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        // The claim is released the moment the member finishes.
        assert_eq!(b.kv().committed_tokens(), 0);
        b.admit(1, Workload::new(8, 4)).unwrap();
        assert_eq!(b.retire().len(), 1);
    }

    #[test]
    fn early_exit_releases_the_full_claim() {
        let a = capped(40);
        let mut b = a.batch_state();
        b.admit(0, Workload::new(8, 24)).unwrap();
        b.admit(1, Workload::new(4, 2)).unwrap();
        assert_eq!(b.kv().committed_tokens(), 38);
        while !b.step_token().unwrap().finished.contains(&1) {}
        // The short member exited early; its whole 6-token claim is
        // back, not just what it wrote.
        assert_eq!(b.kv().committed_tokens(), 32);
        assert_eq!(b.kv().free_tokens(), 8);
    }

    // --- Chunked prefill --------------------------------------------

    /// Steps a batch to completion, returning every retired member and
    /// the total tokens observed step by step.
    fn drain(b: &mut BatchState<'_>) -> (Vec<RetiredMember>, usize) {
        let mut tokens = 0;
        while b.live() > 0 {
            let step = b.step_token().unwrap();
            tokens += step.batch + step.first_tokens.len();
        }
        (b.retire(), tokens)
    }

    #[test]
    fn chunked_prefill_produces_token_identical_output() {
        let a = appliance();
        let ws = [Workload::new(24, 6), Workload::new(16, 3)];
        let run = |chunk: Option<usize>| {
            let mut b = a.batch_state();
            b.set_prefill_chunk(chunk);
            let mut tokens = 0;
            for (i, &w) in ws.iter().enumerate() {
                let out = b.admit(i as u64, w).unwrap();
                if out.pending_prefill == 0 {
                    tokens += 1; // the prefill's first token
                }
            }
            let (retired, stepped) = drain(&mut b);
            let mut per_member: Vec<(u64, usize)> =
                retired.iter().map(|r| (r.id, r.tokens)).collect();
            per_member.sort_unstable();
            (per_member, tokens + stepped)
        };
        let unchunked = run(None);
        for chunk in [1, 4, 7, 64] {
            let chunked = run(Some(chunk));
            assert_eq!(
                chunked.0, unchunked.0,
                "chunk {chunk}: member tokens differ"
            );
            assert_eq!(chunked.1, unchunked.1, "chunk {chunk}: total tokens differ");
        }
    }

    #[test]
    fn chunked_prefill_total_cost_matches_unchunked_closely() {
        // The same per-position programs run in the same order, so the
        // total timeline differs only by per-chunk float conversion.
        let a = appliance();
        let w = Workload::new(24, 4);
        let unchunked = solo_ms(&a, w);
        let mut b = a.batch_state();
        b.set_prefill_chunk(Some(5));
        b.admit(0, w).unwrap();
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        assert_eq!(b.retire().len(), 1);
        let chunked = b.elapsed_ms();
        assert!(
            (chunked - unchunked).abs() < 1e-9 * unchunked,
            "chunked {chunked} vs unchunked {unchunked}"
        );
    }

    #[test]
    fn a_chunk_budget_at_or_above_the_context_is_the_unchunked_path() {
        let a = appliance();
        let w = Workload::new(8, 4);
        let plain = solo_ms(&a, w);
        let mut b = a.batch_state();
        b.set_prefill_chunk(Some(w.input_len));
        let out = b.admit(0, w).unwrap();
        assert_eq!(out.pending_prefill, 0);
        while b.live() > 0 {
            b.step_token().unwrap();
        }
        assert_eq!(b.elapsed_ms(), plain, "bit-identical at a covering budget");
    }

    #[test]
    fn chunked_prefill_bounds_the_decode_stall() {
        // A running member decodes while a long prefill joins: unchunked,
        // one admission stalls decode for the whole context; chunked,
        // no single step (chunk + decode) costs near that.
        let a = appliance();
        let long = Workload::new(96, 4);
        let mut b = a.batch_state();
        b.set_prefill_chunk(Some(8));
        b.admit(0, Workload::new(8, 30)).unwrap();
        b.step_token().unwrap();
        let first_chunk = b.admit(1, long).unwrap();
        assert!(first_chunk.pending_prefill == 88);
        let mut whole = a.batch_state();
        let full_prefill = whole.prefill_cost_ms(long.input_len);
        let mut max_step = first_chunk.prefill_ms;
        while b.live() > 0 {
            max_step = max_step.max(b.step_token().unwrap().ms);
        }
        assert_eq!(b.retire().len(), 2);
        assert!(
            max_step < 0.5 * full_prefill,
            "worst step {max_step} not well under the {full_prefill} ms whole prefill"
        );
    }

    #[test]
    fn prefilling_members_are_reported_and_produce_no_tokens() {
        let a = appliance();
        let mut b = a.batch_state();
        b.set_prefill_chunk(Some(4));
        b.admit(0, Workload::new(8, 6)).unwrap(); // 2 chunks: 4 now, 4 later
        b.admit(1, Workload::new(12, 2)).unwrap(); // 3 chunks: 4 now, 8 later
                                                   // Prefills complete one chunk per step, oldest first; a member
                                                   // mid-prefill produces no tokens and is reported as such.
        let s1 = b.step_token().unwrap();
        assert_eq!(s1.first_tokens, vec![0]); // member 0 completes, emits
        assert_eq!(s1.batch, 0); // nobody was decoding yet
        assert_eq!(s1.prefilling, vec![1]);
        let s2 = b.step_token().unwrap();
        assert_eq!(s2.batch, 1); // member 0 decodes...
        assert_eq!(s2.prefilling, vec![1]); // ...while member 1 prefills
        let s3 = b.step_token().unwrap();
        assert_eq!(s3.first_tokens, vec![1]);
        assert!(s3.prefilling.is_empty());
        // From the next step both decode.
        let s4 = b.step_token().unwrap();
        assert_eq!(s4.batch, 2);
        assert_eq!(s4.finished, vec![1]); // output 2: done one step later
        let (retired, _) = drain(&mut b);
        let mut tokens: Vec<(u64, usize)> = retired.iter().map(|r| (r.id, r.tokens)).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![(0, 6), (1, 2)]);
    }

    #[test]
    fn clearing_the_chunk_budget_mid_prefill_finishes_it_whole() {
        let a = appliance();
        let mut b = a.batch_state();
        b.set_prefill_chunk(Some(4));
        b.admit(0, Workload::new(12, 2)).unwrap();
        b.set_prefill_chunk(None);
        // The next step charges the remaining 8 positions in one chunk,
        // emitting the first token.
        let step = b.step_token().unwrap();
        assert_eq!(step.first_tokens, vec![0]);
        let (retired, _) = drain(&mut b);
        assert_eq!(retired[0].tokens, 2);
    }

    #[test]
    fn estimates_charge_nothing() {
        let a = appliance();
        let mut b = a.batch_state();
        let p = b.prefill_cost_ms(16);
        let d = b.decode_step_cost_ms(4);
        assert!(p > 0.0 && d > 0.0);
        assert_eq!(b.elapsed_ms(), 0.0);
        assert_eq!(b.kv().committed_tokens(), 0);
        // The estimate equals what admission then charges.
        let out = b.admit(0, Workload::new(16, 2)).unwrap();
        assert_eq!(out.prefill_ms, p);
    }
}

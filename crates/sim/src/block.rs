//! Paged K/V allocation: the block-table allocator and the prefix cache.
//!
//! [`KvPool`](crate::KvPool) reserves every member's worst-case
//! `input + output` claim at admission, so HBM that the member will only
//! touch hundreds of decode steps from now sits idle today. [`BlockPool`]
//! recovers that headroom the way vLLM/TGI paged attention does
//! (`conceptual/paged_attention`): the K/V budget is carved into
//! fixed-size *blocks* of [`block_tokens`](BlockPool::block_tokens)
//! context positions, admission takes only the blocks the member's
//! *prompt* needs, and decode grows the member's block table page by
//! page as positions are actually written. The price is twofold and
//! both halves are modelled:
//!
//! - **internal fragmentation** — a member's last block is partially
//!   filled ([`fragmentation_tokens`](BlockPool::fragmentation_tokens)
//!   totals the waste), and the budget's tail that doesn't fill a whole
//!   block is unusable;
//! - **preemption** — because admission no longer covers the worst case,
//!   a [`write`](BlockPool::write) can find the pool exhausted. The
//!   executor then [`evict`](BlockPool::evict)s a victim and either
//!   *recomputes* its K/V later or *retains* it in DDR and swaps it
//!   back ([`PreemptionPolicy`]).
//!
//! On top of blocks sits a **prefix cache**: requests that share a
//! common prompt prefix (a chatbot system prompt) share the K/V blocks
//! that lie entirely inside the shared region, ref-counted per sharer.
//! A sharer that finds the blocks cached skips both the redundant
//! *bytes* (no new allocation) and the redundant *prefill compute*
//! (the executor charges nothing for cached positions). Blocks whose
//! last sharer released stay cached — idle but evictable — so the next
//! request with the same prefix still hits.
//!
//! The allocator is pinned by an invariant suite (`tests/kv_paging.rs`):
//! block conservation (`free + cached + owned == total` at every step),
//! exact frees, and prefix ref-count soundness are enforced by
//! [`assert_invariants`](BlockPool::assert_invariants) under random
//! admit/write/evict/release interleavings.

use crate::error::SimError;
use dfx_hw::MemoryModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the executor does with a preemption victim's K/V state when a
/// grow request finds the pool exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionPolicy {
    /// Drop the victim's blocks and re-run its prefill (over everything
    /// it had materialised) when capacity returns — vLLM's recompute
    /// mode. Costs compute, no DDR traffic.
    #[default]
    Recompute,
    /// Swap the victim's blocks out to the device's DDR and stream them
    /// back when capacity returns — vLLM's swap mode. Costs two DDR
    /// transfers ([`dfx_hw::DdrModel`] timing), no recompute.
    Retain,
}

/// Configuration of the paged K/V mode on an
/// [`Appliance`](crate::Appliance) (see
/// [`Appliance::with_kv_paging`](crate::Appliance::with_kv_paging)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedKvConfig {
    /// Block size in context positions (tokens). Smaller blocks track
    /// actual usage more tightly (less fragmentation) at the cost of a
    /// larger block table; a block size at or above every claim
    /// degenerates to one block per member.
    pub block_tokens: usize,
    /// What happens to a victim when a grow finds the pool exhausted.
    pub policy: PreemptionPolicy,
    /// Length, in tokens, of the system prompt every request in the
    /// stream shares (the chatbot deployment model: one fixed system
    /// prompt, per-user suffixes). Zero disables the prefix cache.
    /// Only whole blocks entirely inside the shared region are shared.
    pub shared_prefix_tokens: usize,
}

impl PagedKvConfig {
    /// Paged allocation with `block_tokens`-token blocks, recompute
    /// preemption and no prefix sharing.
    pub fn new(block_tokens: usize) -> Self {
        PagedKvConfig {
            block_tokens,
            policy: PreemptionPolicy::Recompute,
            shared_prefix_tokens: 0,
        }
    }

    /// Selects the preemption policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PreemptionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the prefix cache: every request's first
    /// `min(tokens, input_len)` context positions are the stream's
    /// common system prompt.
    #[must_use]
    pub fn with_shared_prefix(mut self, tokens: usize) -> Self {
        self.shared_prefix_tokens = tokens;
        self
    }
}

/// Identifies a shareable prompt prefix at admission: all members
/// passing the same `key` declare their first `tokens` context
/// positions identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    /// Identity of the shared prompt (equal key ⇒ equal content).
    pub key: u64,
    /// Length of the shared region in tokens; only the whole blocks it
    /// covers are shared.
    pub tokens: usize,
}

/// Counters a paged run accumulates, surfaced per serving run through
/// [`ServiceReport::paging`](../dfx_serve/struct.ServiceReport.html) and
/// the `memory` reproduce id's paged sweep.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PagingStats {
    /// Configured block size, tokens.
    pub block_tokens: usize,
    /// Blocks the pool was carved into (summed across devices when
    /// merged).
    pub total_blocks: usize,
    /// Peak blocks simultaneously unavailable (member-held or cached).
    pub peak_blocks_in_use: usize,
    /// Peak tokens of internal fragmentation (allocated-but-unwritten
    /// tail positions across live members).
    pub peak_fragmentation_tokens: usize,
    /// Prompt tokens served from the prefix cache instead of being
    /// prefilled.
    pub prefix_hit_tokens: usize,
    /// Shareable prompt tokens that had to be computed (cache cold).
    pub prefix_computed_tokens: usize,
    /// Members evicted because a grow found the pool exhausted.
    pub preemptions: usize,
    /// Evictions that swapped K/V to DDR (the [`PreemptionPolicy::Retain`]
    /// path) rather than scheduling a recompute.
    pub swap_outs: usize,
}

impl PagingStats {
    /// Fraction of shareable prompt traffic served from the cache:
    /// `hits / (hits + computed)`, or 0 when no shareable tokens flowed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.prefix_hit_tokens + self.prefix_computed_tokens;
        if total == 0 {
            return 0.0;
        }
        self.prefix_hit_tokens as f64 / total as f64
    }

    /// Accumulates another device's counters (capacities and peaks sum:
    /// the merged stats describe the fleet).
    pub fn merge(&mut self, other: &PagingStats) {
        self.block_tokens = self.block_tokens.max(other.block_tokens);
        self.total_blocks += other.total_blocks;
        self.peak_blocks_in_use += other.peak_blocks_in_use;
        self.peak_fragmentation_tokens += other.peak_fragmentation_tokens;
        self.prefix_hit_tokens += other.prefix_hit_tokens;
        self.prefix_computed_tokens += other.prefix_computed_tokens;
        self.preemptions += other.preemptions;
        self.swap_outs += other.swap_outs;
    }
}

/// One member's block-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockLease {
    /// Worst-case claim in tokens (`input + output`): the solo-fit bound
    /// and the write ceiling, *not* an up-front reservation.
    claim_tokens: usize,
    /// Context positions materialised so far (cache hits included).
    used_tokens: usize,
    /// Blocks held exclusively by this member.
    owned_blocks: usize,
    /// Leading cache blocks this member holds a reference on.
    shared_blocks: usize,
    /// Shared-prefix declaration: key and the block-aligned shareable
    /// length in tokens (0 without a prefix).
    prefix_key: u64,
    shareable_tokens: usize,
}

/// A paged K/V allocator over one device's [`MemoryModel`]: a block
/// table with on-demand growth, preemption support and a ref-counted
/// prefix cache.
///
/// Admission ([`admit`](BlockPool::admit)) takes blocks for the
/// member's *first write* (its prompt, or its first prefill chunk) —
/// not its worst case — checking only that the worst case could fit an
/// *empty* pool (solo feasibility, so a lone member can always run to
/// completion). [`write`](BlockPool::write) allocates further blocks as
/// positions are materialised and fails with [`SimError::Memory`] when
/// none are left; the executor resolves that by
/// [`evict`](BlockPool::evict)ing a victim under its
/// [`PreemptionPolicy`].
///
/// # Examples
///
/// Page-by-page growth and last-partial-block fragmentation:
///
/// ```
/// use dfx_hw::MemoryModel;
/// use dfx_sim::BlockPool;
///
/// // 102 tokens of K/V budget next to the weights → six 16-token blocks.
/// let mut pool = BlockPool::new(MemoryModel::new(2048, 1024, 10), 16);
/// assert_eq!(pool.total_blocks(), 6);
/// // A member claiming 96 tokens worst-case admits on its 40-token
/// // prompt alone: 3 blocks now, nothing reserved for the rest.
/// pool.admit(0, 96, 40, None).unwrap();
/// assert_eq!(pool.free_blocks(), 3);
/// assert_eq!(pool.fragmentation_tokens(), 8); // 48 allocated − 40 written
/// // Decode grows page by page: 8 more tokens fill block 3's tail...
/// pool.write(0, 8).unwrap();
/// assert_eq!(pool.free_blocks(), 3);
/// // ...and the 49th token opens a fourth block.
/// pool.write(0, 1).unwrap();
/// assert_eq!(pool.free_blocks(), 2);
/// // Release frees exactly the blocks the member held.
/// assert_eq!(pool.release(0), 4);
/// assert_eq!(pool.free_blocks(), 6);
/// ```
///
/// Prefix sharing — the second sharer of a system prompt skips the
/// shared blocks' bytes (and the executor skips their compute):
///
/// ```
/// use dfx_hw::MemoryModel;
/// use dfx_sim::{BlockPool, Prefix};
///
/// let mut pool = BlockPool::new(MemoryModel::new(2048, 1024, 10), 16);
/// let sys = Prefix { key: 7, tokens: 32 }; // two whole 16-token blocks
/// // The first sharer computes its whole 40-token prompt, filling the
/// // cache as its writes cross the shared blocks...
/// assert_eq!(pool.admit(0, 48, 40, Some(sys)).unwrap(), 0);
/// // ...so the second sharer's first 32 positions hit.
/// assert_eq!(pool.admit(1, 64, 24, Some(sys)).unwrap(), 32);
/// assert_eq!(pool.stats().hit_rate(), 0.5);
/// // Releasing both sharers leaves the blocks cached (idle, evictable):
/// // a third sharer still hits without any live co-tenant.
/// pool.release(0);
/// pool.release(1);
/// assert_eq!(pool.cached_blocks(), 2);
/// assert_eq!(pool.prefix_hits(sys), 32);
/// ```
#[derive(Debug, Clone)]
pub struct BlockPool {
    memory: MemoryModel,
    block_tokens: usize,
    total_blocks: usize,
    /// Blocks neither member-held nor cached.
    free_blocks: usize,
    leases: BTreeMap<u64, BlockLease>,
    /// Prefix cache: `(key, block index)` → sharer ref-count. Entries
    /// with zero refs stay cached (hits for future sharers) until an
    /// allocation evicts them, oldest first.
    cache: BTreeMap<(u64, usize), usize>,
    /// Cache entries in insertion order (the deterministic eviction
    /// order for idle entries).
    cache_order: Vec<(u64, usize)>,
    stats: PagingStats,
}

impl BlockPool {
    /// An empty pool carving `memory`'s K/V budget into
    /// `block_tokens`-token blocks (the budget tail that does not fill
    /// a whole block is unusable — block-table quantisation).
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn new(memory: MemoryModel, block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "a K/V block must hold at least 1 token");
        let total_blocks = memory.max_resident_tokens() as usize / block_tokens;
        BlockPool {
            memory,
            block_tokens,
            total_blocks,
            free_blocks: total_blocks,
            leases: BTreeMap::new(),
            cache: BTreeMap::new(),
            cache_order: Vec::new(),
            stats: PagingStats {
                block_tokens,
                total_blocks,
                ..PagingStats::default()
            },
        }
    }

    /// The capacity model the pool allocates against.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Block size in tokens.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Blocks the budget was carved into.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Blocks neither member-held nor cached.
    pub fn free_blocks(&self) -> usize {
        self.free_blocks
    }

    /// Cache entries (referenced or idle).
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Idle cache entries: no live sharer, evictable on demand.
    pub fn cached_idle_blocks(&self) -> usize {
        self.cache.values().filter(|&&refs| refs == 0).count()
    }

    /// Blocks an allocation could take right now: free plus evictable.
    pub fn available_blocks(&self) -> usize {
        self.free_blocks + self.cached_idle_blocks()
    }

    /// Blocks needed to hold `tokens` context positions.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Number of live leases.
    pub fn live(&self) -> usize {
        self.leases.len()
    }

    /// Context positions materialised across every live lease.
    pub fn used_tokens(&self) -> usize {
        self.leases.values().map(|l| l.used_tokens).sum()
    }

    /// Tokens of capacity committed right now: every block that is not
    /// free and not idle cache, at block granularity (fragmentation
    /// included — commitment is what nobody else can allocate).
    pub fn committed_tokens(&self) -> usize {
        (self.total_blocks - self.free_blocks - self.cached_idle_blocks()) * self.block_tokens
    }

    /// Tokens still allocatable, at block granularity.
    pub fn free_tokens(&self) -> usize {
        self.available_blocks() * self.block_tokens
    }

    /// Internal fragmentation right now: allocated-but-unwritten
    /// positions summed over every live member's footprint (each
    /// member's last block is partially filled; shared blocks are full
    /// by construction).
    pub fn fragmentation_tokens(&self) -> usize {
        self.leases
            .values()
            .map(|l| (l.owned_blocks + l.shared_blocks) * self.block_tokens - l.used_tokens)
            .sum()
    }

    /// The blocks member `id` holds, as `(owned, shared)` — `None` for
    /// an unknown id.
    pub fn lease_blocks(&self, id: u64) -> Option<(usize, usize)> {
        self.leases
            .get(&id)
            .map(|l| (l.owned_blocks, l.shared_blocks))
    }

    /// Run counters so far (a copy; totals are filled at construction).
    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Leading tokens of `prefix` already in the cache: the run of
    /// consecutive whole blocks from position 0 present under
    /// `prefix.key`. These are the positions a new sharer would neither
    /// allocate nor compute.
    pub fn prefix_hits(&self, prefix: Prefix) -> usize {
        let shareable = prefix.tokens / self.block_tokens;
        let mut hits = 0;
        while hits < shareable && self.cache.contains_key(&(prefix.key, hits)) {
            hits += 1;
        }
        hits * self.block_tokens
    }

    /// Admits member `id` with a worst-case claim of `claim_tokens` and
    /// an immediate write of `first_write` computed positions (its
    /// prompt, or its first prefill chunk — *excluding* positions the
    /// prefix cache already holds). Returns the cache-hit tokens: the
    /// member starts with that many positions already materialised.
    ///
    /// Only the first write's blocks are taken; the claim is a ceiling
    /// checked against the *whole* pool (solo feasibility), not a
    /// reservation.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidRequest`] for a zero claim, a duplicate id, or
    /// a first write past the claim; [`SimError::Memory`] when the claim
    /// could never fit even an empty pool, or when the first write needs
    /// more blocks than are free or evictable (admission must wait).
    pub fn admit(
        &mut self,
        id: u64,
        claim_tokens: usize,
        first_write: usize,
        prefix: Option<Prefix>,
    ) -> Result<usize, SimError> {
        if claim_tokens == 0 {
            return Err(SimError::InvalidRequest(
                "a K/V lease must claim at least one token".into(),
            ));
        }
        if self.leases.contains_key(&id) {
            return Err(SimError::InvalidRequest(format!(
                "member {id} already holds a K/V lease"
            )));
        }
        if self.blocks_for(claim_tokens) > self.total_blocks {
            return Err(SimError::Memory(format!(
                "a claim of {claim_tokens} tokens needs {} blocks of {}; the whole pool has {}",
                self.blocks_for(claim_tokens),
                self.block_tokens,
                self.total_blocks,
            )));
        }
        let (key, shareable_tokens) = match prefix {
            Some(p) => (p.key, (p.tokens / self.block_tokens) * self.block_tokens),
            None => (0, 0),
        };
        let hit_tokens = match prefix {
            Some(p) => self.prefix_hits(p),
            None => 0,
        };
        let hit_blocks = hit_tokens / self.block_tokens;
        if hit_tokens + first_write > claim_tokens {
            return Err(SimError::InvalidRequest(format!(
                "member {id}'s first write of {first_write} tokens (after {hit_tokens} cached) \
                 exceeds its claim of {claim_tokens}"
            )));
        }
        // Attaching pins the hit blocks, so they stop being evictable:
        // count the first write's need against what would remain.
        let idle_hits = (0..hit_blocks)
            .filter(|&i| self.cache.get(&(key, i)) == Some(&0))
            .count();
        let needed = self.blocks_for(hit_tokens + first_write) - hit_blocks;
        if needed > self.available_blocks() - idle_hits {
            return Err(SimError::Memory(format!(
                "admitting member {id} needs {needed} free blocks of {}; only {} are available",
                self.block_tokens,
                self.available_blocks() - idle_hits,
            )));
        }
        for i in 0..hit_blocks {
            let refs = self.cache.get_mut(&(key, i)).ok_or_else(|| {
                SimError::Service(format!(
                    "prefix block ({key:#x}, {i}) vanished mid-admission"
                ))
            })?;
            *refs += 1;
        }
        self.stats.prefix_hit_tokens += hit_tokens;
        self.leases.insert(
            id,
            BlockLease {
                claim_tokens,
                used_tokens: hit_tokens,
                owned_blocks: 0,
                shared_blocks: hit_blocks,
                prefix_key: key,
                shareable_tokens,
            },
        );
        if first_write > 0 {
            // Feasibility was checked above, so this only propagates a
            // genuine accounting bug rather than aborting the process.
            self.write_impl(id, first_write, true)?;
        }
        self.note_peaks();
        Ok(hit_tokens)
    }

    /// Whether member `id` could [`write`](BlockPool::write) `tokens`
    /// more positions right now (enough free or evictable blocks, and
    /// within its claim).
    pub fn can_write(&self, id: u64, tokens: usize) -> bool {
        let Some(lease) = self.leases.get(&id) else {
            return false;
        };
        if lease.used_tokens + tokens > lease.claim_tokens {
            return false;
        }
        let needed = self
            .blocks_for(lease.used_tokens + tokens)
            .saturating_sub(lease.owned_blocks + lease.shared_blocks);
        needed <= self.available_blocks()
    }

    /// Records `tokens` K/V positions written by member `id`, allocating
    /// blocks page by page as block boundaries are crossed. Writes that
    /// complete a whole block inside the member's shared-prefix region
    /// publish it to the prefix cache (or, when a concurrent sharer
    /// published it first, drop the duplicate and take a reference).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidRequest`] for an unknown id or writes past the
    /// member's claim (an executor bug); [`SimError::Memory`] when the
    /// pool is exhausted — the preemption trigger: nothing changes, the
    /// executor [`evict`](BlockPool::evict)s a victim and retries.
    pub fn write(&mut self, id: u64, tokens: usize) -> Result<(), SimError> {
        self.write_impl(id, tokens, true)
    }

    /// [`write`](BlockPool::write) without prefix-compute accounting:
    /// the swap-in path restores positions from DDR rather than
    /// computing them, so they are neither cache hits nor misses.
    pub fn restore(&mut self, id: u64, tokens: usize) -> Result<(), SimError> {
        self.write_impl(id, tokens, false)
    }

    fn write_impl(&mut self, id: u64, tokens: usize, computed: bool) -> Result<(), SimError> {
        let lease = self.leases.get(&id).copied().ok_or_else(|| {
            SimError::InvalidRequest(format!("member {id} holds no K/V lease to grow"))
        })?;
        let new_used = lease.used_tokens + tokens;
        if new_used > lease.claim_tokens {
            return Err(SimError::Memory(format!(
                "member {id} wrote {new_used} K/V positions past its claim of {}",
                lease.claim_tokens
            )));
        }
        let have = lease.owned_blocks + lease.shared_blocks;
        let delta = self.blocks_for(new_used).saturating_sub(have);
        if delta > self.available_blocks() {
            return Err(SimError::Memory(format!(
                "the block pool is exhausted: member {id} needs {delta} blocks of {}; \
                 {} free, {} evictable — preempt a member or wait for a retirement",
                self.block_tokens,
                self.free_blocks,
                self.cached_idle_blocks(),
            )));
        }
        self.take_blocks(delta);
        let lease = self
            .leases
            .get_mut(&id)
            .ok_or_else(|| SimError::Service(format!("member {id}'s lease vanished mid-write")))?;
        lease.owned_blocks += delta;
        if computed && lease.used_tokens < lease.shareable_tokens {
            self.stats.prefix_computed_tokens +=
                new_used.min(lease.shareable_tokens) - lease.used_tokens;
        }
        lease.used_tokens = new_used;
        // Publish whole blocks completed inside the shared region.
        let (key, shareable) = (lease.prefix_key, lease.shareable_tokens);
        while {
            let l = &self.leases[&id];
            (l.shared_blocks + 1) * self.block_tokens <= l.used_tokens.min(shareable)
        } {
            let idx = self.leases[&id].shared_blocks;
            match self.cache.get_mut(&(key, idx)) {
                Some(refs) => {
                    // A concurrent sharer published this block first:
                    // drop our duplicate copy and reference theirs.
                    *refs += 1;
                    self.free_blocks += 1;
                }
                None => {
                    self.cache.insert((key, idx), 1);
                    self.cache_order.push((key, idx));
                }
            }
            let l = self.leases.get_mut(&id).ok_or_else(|| {
                SimError::Service(format!("member {id}'s lease vanished mid-write"))
            })?;
            l.owned_blocks -= 1;
            l.shared_blocks += 1;
        }
        self.note_peaks();
        Ok(())
    }

    /// Re-attaches an evicted member (zero positions materialised) to
    /// the cached run of its shared prefix, up to `cap` tokens: the
    /// recompute path's head start. Returns the tokens attached (0 for
    /// members without a prefix, or when the cache has gone cold).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidRequest`] for an unknown id or a member that
    /// still holds positions.
    pub fn attach_cached_prefix(&mut self, id: u64, cap: usize) -> Result<usize, SimError> {
        let lease =
            self.leases.get(&id).copied().ok_or_else(|| {
                SimError::InvalidRequest(format!("member {id} holds no K/V lease"))
            })?;
        if lease.used_tokens > 0 {
            return Err(SimError::InvalidRequest(format!(
                "member {id} already holds {} positions; only an evicted member re-attaches",
                lease.used_tokens
            )));
        }
        let hit = self
            .prefix_hits(Prefix {
                key: lease.prefix_key,
                tokens: lease.shareable_tokens,
            })
            .min((cap / self.block_tokens) * self.block_tokens);
        for i in 0..hit / self.block_tokens {
            let refs = self.cache.get_mut(&(lease.prefix_key, i)).ok_or_else(|| {
                SimError::Service(format!(
                    "prefix block ({:#x}, {i}) vanished mid-attach",
                    lease.prefix_key
                ))
            })?;
            *refs += 1;
        }
        let l = self
            .leases
            .get_mut(&id)
            .ok_or_else(|| SimError::Service(format!("member {id}'s lease vanished mid-attach")))?;
        l.used_tokens = hit;
        l.shared_blocks = hit / self.block_tokens;
        self.stats.prefix_hit_tokens += hit;
        Ok(hit)
    }

    /// Preempts member `id`: frees its owned blocks, releases its cache
    /// references (the blocks stay cached for future sharers) and
    /// resets it to zero materialised positions — the lease itself
    /// survives, so the member can be recomputed or swapped back in.
    /// Returns `(used_tokens, owned_blocks)` at eviction: what must be
    /// rematerialised, and the footprint a swap would move.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidRequest`] for an unknown id.
    pub fn evict(&mut self, id: u64) -> Result<(usize, usize), SimError> {
        let lease = self.leases.get_mut(&id).ok_or_else(|| {
            SimError::InvalidRequest(format!("member {id} holds no K/V lease to evict"))
        })?;
        let used = lease.used_tokens;
        let owned = lease.owned_blocks;
        let shared = lease.shared_blocks;
        let key = lease.prefix_key;
        lease.used_tokens = 0;
        lease.owned_blocks = 0;
        lease.shared_blocks = 0;
        self.free_blocks += owned;
        for i in 0..shared {
            let refs = self.cache.get_mut(&(key, i)).ok_or_else(|| {
                SimError::Service(format!(
                    "shared block ({key:#x}, {i}) vanished mid-eviction"
                ))
            })?;
            *refs -= 1;
        }
        self.stats.preemptions += 1;
        Ok((used, owned))
    }

    /// Counts a [`PreemptionPolicy::Retain`] eviction that swapped K/V
    /// out to DDR (the executor charges the transfer itself).
    pub(crate) fn record_swap_out(&mut self) {
        self.stats.swap_outs += 1;
    }

    /// Releases member `id`'s lease, freeing its owned blocks and its
    /// cache references — exactly the blocks it held, whether it ran to
    /// completion, exited early, or was cancelled mid-prefill. Shared
    /// blocks whose last reference drops *stay cached* (idle, evictable)
    /// so future sharers still hit. Returns the blocks the member held;
    /// unknown ids free nothing.
    pub fn release(&mut self, id: u64) -> usize {
        match self.leases.remove(&id) {
            Some(lease) => {
                self.free_blocks += lease.owned_blocks;
                for i in 0..lease.shared_blocks {
                    // Release is infallible by contract (unknown ids
                    // free nothing); a lease always references cached
                    // blocks, pinned by its own refcount.
                    let refs = self
                        .cache
                        .get_mut(&(lease.prefix_key, i))
                        // lint: allow(panic-policy, lease refcount pins its cached blocks)
                        .expect("shared block cached");
                    *refs -= 1;
                }
                lease.owned_blocks + lease.shared_blocks
            }
            None => 0,
        }
    }

    /// Takes `n` blocks for allocation; the caller has already checked
    /// `n <= available_blocks()`. Prefers free blocks, then evicts idle
    /// cache entries oldest first.
    fn take_blocks(&mut self, n: usize) {
        while self.free_blocks < n {
            // Private helper: both callers bound `n` by
            // `available_blocks()` (free + idle cached) first, so an
            // idle entry must exist whenever free blocks run short.
            let pos = self
                .cache_order
                .iter()
                .position(|k| self.cache.get(k) == Some(&0))
                // lint: allow(panic-policy, callers bound n by available_blocks)
                .expect("caller checked available_blocks");
            let key = self.cache_order.remove(pos);
            self.cache.remove(&key);
            self.free_blocks += 1;
        }
        self.free_blocks -= n;
    }

    fn note_peaks(&mut self) {
        let in_use = self.total_blocks - self.free_blocks - self.cached_idle_blocks();
        self.stats.peak_blocks_in_use = self.stats.peak_blocks_in_use.max(in_use);
        self.stats.peak_fragmentation_tokens = self
            .stats
            .peak_fragmentation_tokens
            .max(self.fragmentation_tokens());
    }

    /// Validates the allocator's invariants, panicking with a diagnostic
    /// on violation — the anchor the property suite calls after every
    /// operation:
    ///
    /// - **block conservation**: free + cached + Σ owned == total;
    /// - **ref-count soundness**: Σ cache refs == Σ members' shared
    ///   blocks (references never leak or go negative);
    /// - **footprint exactness**: every member holds exactly the blocks
    ///   its materialised positions need, within its claim.
    pub fn assert_invariants(&self) {
        let owned: usize = self.leases.values().map(|l| l.owned_blocks).sum();
        assert_eq!(
            self.free_blocks + self.cache.len() + owned,
            self.total_blocks,
            "block conservation violated: {} free + {} cached + {owned} owned != {} total",
            self.free_blocks,
            self.cache.len(),
            self.total_blocks,
        );
        let refs: usize = self.cache.values().sum();
        let shared: usize = self.leases.values().map(|l| l.shared_blocks).sum();
        assert_eq!(
            refs, shared,
            "prefix ref-counts leaked: {refs} cache refs vs {shared} member shared blocks"
        );
        assert_eq!(
            self.cache.len(),
            self.cache_order.len(),
            "cache eviction order out of sync"
        );
        for (id, l) in &self.leases {
            assert!(
                l.used_tokens <= l.claim_tokens,
                "member {id} wrote past its claim"
            );
            assert!(
                l.shared_blocks * self.block_tokens <= l.used_tokens || l.used_tokens == 0,
                "member {id} shares blocks beyond its writes"
            );
            let footprint = if l.used_tokens == 0 {
                0
            } else {
                self.blocks_for(l.used_tokens)
            };
            assert_eq!(
                l.owned_blocks + l.shared_blocks,
                footprint,
                "member {id} holds {} blocks for {} used tokens",
                l.owned_blocks + l.shared_blocks,
                l.used_tokens,
            );
            for i in 0..l.shared_blocks {
                assert!(
                    self.cache
                        .get(&(l.prefix_key, i))
                        .is_some_and(|&refs| refs >= 1),
                    "member {id}'s shared block {i} is not cached"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pool of `blocks` 4-token blocks.
    fn pool(blocks: u64) -> BlockPool {
        BlockPool::new(MemoryModel::new(blocks * 4 + 1, 1, 1), 4)
    }

    #[test]
    fn admission_takes_prompt_blocks_not_the_claim() {
        let mut p = pool(4);
        // Claim 16 (the whole pool), prompt 5 → two blocks now.
        p.admit(0, 16, 5, None).unwrap();
        assert_eq!(p.free_blocks(), 2);
        assert_eq!(p.committed_tokens(), 8);
        // A second member the reserved pool would refuse fits.
        p.admit(1, 8, 4, None).unwrap();
        assert_eq!(p.free_blocks(), 1);
        p.assert_invariants();
    }

    #[test]
    fn solo_infeasible_claims_are_refused_outright() {
        let mut p = pool(4);
        let err = p.admit(0, 17, 4, None).unwrap_err();
        assert!(matches!(err, SimError::Memory(_)), "{err:?}");
        assert_eq!(p.live(), 0);
    }

    #[test]
    fn writes_grow_page_by_page_and_exhaustion_is_reported() {
        let mut p = pool(3);
        p.admit(0, 12, 4, None).unwrap();
        p.admit(1, 8, 4, None).unwrap();
        p.write(0, 2).unwrap(); // 6 used → a second block → pool full
        assert_eq!(p.free_blocks(), 0);
        assert!(p.can_write(0, 2), "block 2's tail still has room");
        assert!(!p.can_write(1, 1), "a new block is needed and none left");
        let err = p.write(1, 1).unwrap_err();
        assert!(matches!(err, SimError::Memory(_)), "{err:?}");
        // Nothing changed on the failed write.
        p.assert_invariants();
        assert_eq!(p.lease_blocks(1), Some((1, 0)));
    }

    #[test]
    fn eviction_frees_blocks_and_keeps_the_lease() {
        let mut p = pool(3);
        p.admit(0, 12, 8, None).unwrap();
        p.admit(1, 4, 4, None).unwrap();
        let (used, owned) = p.evict(1).unwrap();
        assert_eq!((used, owned), (4, 1));
        assert_eq!(p.live(), 2, "the lease survives eviction");
        assert_eq!(p.free_blocks(), 1);
        assert_eq!(p.stats().preemptions, 1);
        // The victim rematerialises later.
        p.write(1, 4).unwrap();
        p.assert_invariants();
    }

    #[test]
    fn release_frees_exactly_what_the_member_held() {
        let mut p = pool(4);
        p.admit(0, 16, 9, None).unwrap(); // 3 blocks
        assert_eq!(p.release(0), 3);
        assert_eq!(p.free_blocks(), 4);
        assert_eq!(p.release(0), 0, "double release frees nothing");
        p.assert_invariants();
    }

    #[test]
    fn shared_prefixes_are_cached_hit_and_evicted_in_order() {
        let mut p = pool(6);
        let sys = Prefix { key: 1, tokens: 8 };
        assert_eq!(p.admit(0, 12, 12, Some(sys)).unwrap(), 0);
        assert_eq!(p.lease_blocks(0), Some((1, 2)));
        // The second sharer hits both prefix blocks: one new block only.
        assert_eq!(p.admit(1, 12, 4, Some(sys)).unwrap(), 8);
        assert_eq!(p.lease_blocks(1), Some((1, 2)));
        assert_eq!(p.free_blocks(), 2);
        p.assert_invariants();
        // Both release: blocks stay cached, idle, and still hit.
        p.release(0);
        p.release(1);
        assert_eq!(p.cached_idle_blocks(), 2);
        assert_eq!(p.prefix_hits(sys), 8);
        // Allocation pressure evicts idle cache, oldest first.
        p.admit(9, 24, 24, None).unwrap();
        assert_eq!(p.cached_blocks(), 0);
        assert_eq!(p.prefix_hits(sys), 0);
        p.assert_invariants();
    }

    #[test]
    fn partial_prefix_blocks_are_never_shared() {
        let mut p = pool(6);
        // A 6-token shared region covers one whole 4-token block; the
        // 2-token tail stays private.
        let sys = Prefix { key: 2, tokens: 6 };
        p.admit(0, 10, 10, Some(sys)).unwrap();
        assert_eq!(p.lease_blocks(0), Some((2, 1)));
        assert_eq!(p.admit(1, 10, 6, Some(sys)).unwrap(), 4);
        p.assert_invariants();
    }

    #[test]
    fn hit_rate_counts_shareable_traffic_only() {
        let mut p = pool(8);
        let sys = Prefix { key: 3, tokens: 8 };
        p.admit(0, 16, 16, Some(sys)).unwrap(); // 8 shareable computed
        p.admit(1, 16, 8, Some(sys)).unwrap(); // 8 hit
        let s = p.stats();
        assert_eq!(s.prefix_computed_tokens, 8);
        assert_eq!(s.prefix_hit_tokens, 8);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_cold_sharers_deduplicate_on_publish() {
        let mut p = pool(8);
        let sys = Prefix { key: 4, tokens: 4 };
        // Both admitted cold (chunked prefill: nothing written yet).
        p.admit(0, 8, 2, Some(sys)).unwrap();
        p.admit(1, 8, 2, Some(sys)).unwrap();
        // Both complete the shared block; the second's copy is dropped.
        p.write(0, 2).unwrap();
        p.write(1, 2).unwrap();
        assert_eq!(p.cached_blocks(), 1);
        assert_eq!(p.lease_blocks(0), Some((0, 1)));
        assert_eq!(p.lease_blocks(1), Some((0, 1)));
        p.assert_invariants();
    }

    #[test]
    fn restore_does_not_distort_prefix_accounting() {
        let mut p = pool(4);
        p.admit(0, 8, 8, None).unwrap();
        let (used, _) = p.evict(0).unwrap();
        p.restore(0, used).unwrap();
        assert_eq!(p.stats().prefix_computed_tokens, 0);
        p.assert_invariants();
    }
}

//! The homogeneous multi-FPGA cluster, functionally simulated.
//!
//! All cores run the same program shape on partitioned weights (paper
//! §IV-B). The cluster drives each core's functional executor until it
//! pauses at a router instruction, performs the ring exchange (all-gather
//! with core-id reordering, or the LM-head argmax reduction) and resumes
//! every core — data-accurate lockstep execution of the SPMD model.

use crate::error::SimError;
use dfx_core::{CoreEvent, CoreWeights, FunctionalCore};
use dfx_hw::{allgather_reorder, argmax_reduce};
use dfx_isa::{Instr, ParallelConfig, Program, ProgramBuilder};
use dfx_model::GptWeights;
use dfx_num::F16;

/// A functionally simulated cluster of DFX cores.
pub struct FunctionalCluster {
    cores: Vec<FunctionalCore>,
    builders: Vec<ProgramBuilder>,
    weights: GptWeights<F16>,
}

impl std::fmt::Debug for FunctionalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionalCluster")
            .field("cores", &self.cores.len())
            .field("model", &self.weights.config.name)
            .finish()
    }
}

impl FunctionalCluster {
    /// Builds a cluster of `num_cores` cores holding partitions of
    /// `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Partition`] if the model does not divide
    /// evenly across the cluster.
    pub fn new(weights: GptWeights<F16>, num_cores: usize) -> Result<Self, SimError> {
        let cfg = weights.config.clone();
        let mut cores = Vec::with_capacity(num_cores);
        let mut builders = Vec::with_capacity(num_cores);
        for c in 0..num_cores {
            let par = ParallelConfig::new(c, num_cores);
            par.check(&cfg).map_err(SimError::Partition)?;
            cores.push(FunctionalCore::new(CoreWeights::partition(&weights, par)));
            builders.push(ProgramBuilder::new(cfg.clone(), par).map_err(SimError::Partition)?);
        }
        Ok(FunctionalCluster {
            cores,
            builders,
            weights,
        })
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The model weights (full, unpartitioned).
    pub fn weights(&self) -> &GptWeights<F16> {
        &self.weights
    }

    /// Clears the KV caches for a fresh request.
    pub fn reset(&mut self) -> Result<(), SimError> {
        let num = self.cores.len();
        let mut fresh = Vec::with_capacity(num);
        for c in 0..num {
            let par = ParallelConfig::new(c, num);
            fresh.push(FunctionalCore::new(CoreWeights::partition(
                &self.weights,
                par,
            )));
        }
        self.cores = fresh;
        Ok(())
    }

    /// Runs one token step on every core; returns the generated token
    /// when `lm_head` is set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LockstepViolation`] if the homogeneous cores
    /// diverge (an internal invariant).
    pub fn run_step(
        &mut self,
        token: u32,
        pos: usize,
        lm_head: bool,
    ) -> Result<Option<u32>, SimError> {
        let programs: Vec<Program> = self
            .builders
            .iter()
            .map(|b| b.token_step(pos, lm_head))
            .collect();
        for core in &mut self.cores {
            core.begin_step(token);
        }

        let mut pcs = vec![0usize; self.cores.len()];
        loop {
            let mut events = Vec::with_capacity(self.cores.len());
            for (i, core) in self.cores.iter_mut().enumerate() {
                events.push(core.run(&programs[i], pcs[i]));
            }

            match &events[0].1 {
                CoreEvent::Done => {
                    if !events.iter().all(|(_, e)| *e == CoreEvent::Done) {
                        return Err(SimError::LockstepViolation(
                            "cores finished at different points".into(),
                        ));
                    }
                    break;
                }
                CoreEvent::AllGather { instr_index, .. } => {
                    let idx = *instr_index;
                    let mut partials = Vec::with_capacity(self.cores.len());
                    for (i, (at, ev)) in events.iter().enumerate() {
                        match ev {
                            CoreEvent::AllGather {
                                instr_index,
                                partial,
                            } if *at == idx => {
                                debug_assert_eq!(*instr_index, idx);
                                partials.push(partial.clone());
                            }
                            other => {
                                return Err(SimError::LockstepViolation(format!(
                                    "core {i} raised {other:?} while core 0 gathers at {idx}"
                                )))
                            }
                        }
                    }
                    let full = allgather_reorder(&partials);
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        let Instr::Router(r) = &programs[i].instrs()[idx].instr else {
                            return Err(SimError::LockstepViolation(
                                "pause index is not a router instruction".into(),
                            ));
                        };
                        core.complete_allgather(r, &full);
                        pcs[i] = idx + 1;
                    }
                }
                CoreEvent::ArgMaxSync { instr_index, .. } => {
                    let idx = *instr_index;
                    let mut candidates = Vec::with_capacity(self.cores.len());
                    for (i, (_, ev)) in events.iter().enumerate() {
                        match ev {
                            CoreEvent::ArgMaxSync {
                                local_idx,
                                local_max,
                                ..
                            } => {
                                candidates.push((*local_idx, local_max.to_f64()));
                            }
                            other => {
                                return Err(SimError::LockstepViolation(format!(
                                    "core {i} raised {other:?} during argmax sync"
                                )))
                            }
                        }
                    }
                    let winner = argmax_reduce(&candidates);
                    let winner_max = candidates
                        .iter()
                        .find(|(i, _)| *i == winner)
                        .map(|(_, m)| *m)
                        .unwrap_or(f64::NEG_INFINITY);
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        let Instr::Router(r) = &programs[i].instrs()[idx].instr else {
                            return Err(SimError::LockstepViolation(
                                "pause index is not a router instruction".into(),
                            ));
                        };
                        core.complete_argmax(r, winner, F16::from_f64(winner_max));
                        pcs[i] = idx + 1;
                    }
                }
            }
        }

        if lm_head {
            let tok = self.cores[0].out_token().ok_or_else(|| {
                SimError::LockstepViolation("LM-head step produced no token".into())
            })?;
            for (i, core) in self.cores.iter().enumerate() {
                if core.out_token() != Some(tok) {
                    return Err(SimError::LockstepViolation(format!(
                        "core {i} decoded {:?} but core 0 decoded {tok}",
                        core.out_token()
                    )));
                }
            }
            Ok(Some(tok))
        } else {
            Ok(None)
        }
    }

    /// End-to-end text generation: summarises the context token by token
    /// (paper Fig 1), then generates greedily.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input, overlong sequences, or internal
    /// lockstep violations.
    pub fn generate(&mut self, input: &[u32], output_len: usize) -> Result<Vec<u32>, SimError> {
        if input.is_empty() {
            return Err(SimError::InvalidRequest(
                "context must contain at least one token".into(),
            ));
        }
        let max = self.weights.config.max_seq_len;
        if input.len() + output_len > max {
            return Err(SimError::InvalidRequest(format!(
                "sequence of {} exceeds the model maximum {max}",
                input.len() + output_len
            )));
        }

        let mut out = Vec::with_capacity(output_len);
        let mut next = None;
        // Summarization stage: LM head only on the last context token.
        for (pos, &tok) in input.iter().enumerate() {
            let lm = pos + 1 == input.len() && output_len > 0;
            next = self.run_step(tok, pos, lm)?;
        }
        // Generation stage.
        let mut pos = input.len();
        while out.len() < output_len {
            let tok = next.ok_or_else(|| {
                SimError::LockstepViolation("generation step without a token".into())
            })?;
            out.push(tok);
            if out.len() == output_len {
                break;
            }
            next = self.run_step(tok, pos, true)?;
            pos += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::{Gpt2Model, GptConfig};

    fn weights() -> GptWeights<F16> {
        GptWeights::synthetic(&GptConfig::tiny()).cast()
    }

    #[test]
    fn cluster_sizes_produce_identical_tokens() {
        // The headline functional property: 1-, and 2-core clusters
        // generate the same text (model parallelism is numerically
        // transparent at the token level).
        let input = [3u32, 1, 4, 1, 5];
        let mut reference_tokens = None;
        for cores in [1usize, 2] {
            let mut cluster = FunctionalCluster::new(weights(), cores).unwrap();
            let tokens = cluster.generate(&input, 5).unwrap();
            match &reference_tokens {
                None => reference_tokens = Some(tokens),
                Some(r) => assert_eq!(&tokens, r, "{cores}-core cluster diverged"),
            }
        }
    }

    #[test]
    fn cluster_matches_f16_reference_model() {
        let w = weights();
        let reference = Gpt2Model::new(w.clone());
        let input = [7u32, 8, 9, 10];
        let expect = reference.generate(&input, 4).tokens;
        let mut cluster = FunctionalCluster::new(w, 2).unwrap();
        let got = cluster.generate(&input, 4).unwrap();
        // The DFX datapath accumulates through MAC trees vs the
        // reference's sequential order, so logit ties can flip; on the
        // tiny model the argmax agrees.
        assert_eq!(got, expect);
    }

    #[test]
    fn reset_clears_context() {
        let mut cluster = FunctionalCluster::new(weights(), 2).unwrap();
        let a = cluster.generate(&[1, 2, 3], 3).unwrap();
        cluster.reset().unwrap();
        let b = cluster.generate(&[1, 2, 3], 3).unwrap();
        assert_eq!(a, b, "reset must make runs reproducible");
    }

    #[test]
    fn indivisible_partition_is_an_error() {
        let err = FunctionalCluster::new(weights(), 3).unwrap_err();
        assert!(matches!(err, SimError::Partition(_)));
    }

    #[test]
    fn empty_input_is_rejected() {
        let mut cluster = FunctionalCluster::new(weights(), 1).unwrap();
        assert!(matches!(
            cluster.generate(&[], 2),
            Err(SimError::InvalidRequest(_))
        ));
    }

    #[test]
    fn overlong_request_is_rejected() {
        let mut cluster = FunctionalCluster::new(weights(), 1).unwrap();
        let ctx: Vec<u32> = (0..100).collect();
        assert!(matches!(
            cluster.generate(&ctx, 100),
            Err(SimError::InvalidRequest(_))
        ));
    }
}

//! Simulation errors.

/// Error type of the simulation crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The model cannot be partitioned across the requested cluster.
    Partition(String),
    /// The homogeneous cores diverged (a simulator invariant violation).
    LockstepViolation(String),
    /// Invalid workload or configuration.
    InvalidRequest(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Partition(m) => write!(f, "partitioning failed: {m}"),
            SimError::LockstepViolation(m) => write!(f, "lockstep violation: {m}"),
            SimError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

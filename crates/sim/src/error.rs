//! Simulation errors.

/// Error type of the simulation crate.
///
/// Marked `#[non_exhaustive]`: downstream crates (the serving engine in
/// particular) gain new failure modes over time, so matches must carry a
/// wildcard arm and adding a variant is not a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The model cannot be partitioned across the requested cluster.
    Partition(String),
    /// The homogeneous cores diverged (a simulator invariant violation).
    LockstepViolation(String),
    /// Invalid workload or configuration.
    InvalidRequest(String),
    /// The request-serving engine failed (bad arrival process, empty
    /// backend pool, malformed statistics input, ...).
    Service(String),
    /// A device-memory budget was exceeded (a K/V claim past the free
    /// HBM, or an executor writing past its own reservation).
    Memory(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Partition(m) => write!(f, "partitioning failed: {m}"),
            SimError::LockstepViolation(m) => write!(f, "lockstep violation: {m}"),
            SimError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            SimError::Service(m) => write!(f, "serving failed: {m}"),
            SimError::Memory(m) => write!(f, "memory budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

//! Appliance cost analysis (paper Table II).
//!
//! Cost-effectiveness compares retail accelerator prices only (the paper
//! excludes CPUs/storage): $11,458 per V100 and $7,795 per Alveo U280,
//! against throughput on the 1.5B model at the 64:64 chatbot workload.

use serde::{Deserialize, Serialize};

/// Retail price of one NVIDIA V100 32 GB, USD (paper Table II).
pub const V100_PRICE_USD: f64 = 11_458.0;
/// Retail price of one Xilinx Alveo U280, USD (paper Table II).
pub const U280_PRICE_USD: f64 = 7_795.0;

/// One appliance's row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceCost {
    /// Name of the appliance.
    pub name: String,
    /// Accelerators installed.
    pub accelerators: usize,
    /// Price per accelerator, USD.
    pub unit_price_usd: f64,
    /// Measured throughput, tokens/s.
    pub tokens_per_second: f64,
}

impl ApplianceCost {
    /// Total accelerator cost, USD.
    pub fn total_cost_usd(&self) -> f64 {
        self.unit_price_usd * self.accelerators as f64
    }

    /// The paper's cost-effectiveness metric: tokens/s per million USD.
    pub fn tokens_per_second_per_million_usd(&self) -> f64 {
        self.tokens_per_second / (self.total_cost_usd() / 1e6)
    }
}

/// The Table II comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// The GPU appliance row.
    pub gpu: ApplianceCost,
    /// The DFX appliance row.
    pub dfx: ApplianceCost,
}

impl CostComparison {
    /// Builds the comparison from measured throughputs (4 accelerators
    /// each, as in the paper).
    pub fn from_throughput(gpu_tokens_per_second: f64, dfx_tokens_per_second: f64) -> Self {
        CostComparison {
            gpu: ApplianceCost {
                name: "GPU Appliance (4x V100)".into(),
                accelerators: 4,
                unit_price_usd: V100_PRICE_USD,
                tokens_per_second: gpu_tokens_per_second,
            },
            dfx: ApplianceCost {
                name: "DFX (4x Alveo U280)".into(),
                accelerators: 4,
                unit_price_usd: U280_PRICE_USD,
                tokens_per_second: dfx_tokens_per_second,
            },
        }
    }

    /// DFX's cost-effectiveness advantage (the paper reports 8.21×).
    pub fn dfx_advantage(&self) -> f64 {
        self.dfx.tokens_per_second_per_million_usd() / self.gpu.tokens_per_second_per_million_usd()
    }

    /// Upfront saving of DFX over the GPU appliance, USD (paper: $14,652).
    pub fn upfront_saving_usd(&self) -> f64 {
        self.gpu.total_cost_usd() - self.dfx.total_cost_usd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce_table2() {
        // With the paper's measured 13.01 and 72.68 tokens/s the ratio is
        // 8.21x and the saving $14,652.
        let c = CostComparison::from_throughput(13.01, 72.68);
        assert!((c.gpu.tokens_per_second_per_million_usd() - 283.86).abs() < 1.0);
        assert!((c.dfx.tokens_per_second_per_million_usd() - 2330.98).abs() < 2.0);
        assert!((c.dfx_advantage() - 8.21).abs() < 0.05);
        assert_eq!(c.upfront_saving_usd(), 14_652.0);
    }

    #[test]
    fn advantage_scales_with_throughput_ratio() {
        let base = CostComparison::from_throughput(10.0, 10.0);
        // Equal throughput: advantage = price ratio.
        let price_ratio = (4.0 * V100_PRICE_USD) / (4.0 * U280_PRICE_USD);
        assert!((base.dfx_advantage() - price_ratio).abs() < 1e-9);
    }
}

//! Pipelined model parallelism — the scheme the paper rejects (§IV-B).
//!
//! In pipelined parallelism each device owns a contiguous block of
//! decoder layers and tokens flow stage to stage. Throughput can pipeline
//! across *independent* requests, but text generation is a feedback loop:
//! token *t+1* cannot enter stage 0 until token *t* leaves the last stage
//! and the LM head. Per-token latency therefore stays at the
//! full-model-width single-device cost plus the inter-stage transfers —
//! "the difference in latency between the two schemes would increase
//! linearly per decoder layer" (paper §IV-B). This model quantifies that
//! argument for the ablation harness.

use crate::error::SimError;
use dfx_core::{CoreParams, StepTiming, TimingCore};
use dfx_hw::{Cycles, RingModel};
use dfx_isa::{ParallelConfig, ProgramBuilder};
use dfx_model::{GptConfig, Workload};
use serde::{Deserialize, Serialize};

/// Latency result of a pipelined-parallelism run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelinedRun {
    /// The workload.
    pub workload: Workload,
    /// Number of pipeline stages (devices).
    pub stages: usize,
    /// End-to-end latency, ms.
    pub latency_ms: f64,
    /// Portion spent on inter-stage activations transfers, ms.
    pub transfer_ms: f64,
}

impl PipelinedRun {
    /// Output tokens per second.
    pub fn tokens_per_second(&self) -> f64 {
        self.workload.output_len as f64 / (self.latency_ms / 1e3)
    }
}

/// Times a text-generation workload under pipelined parallelism with
/// `stages` devices, each holding `num_layers / stages` full-width
/// layers.
///
/// Every token step costs the *single-device, full-width* decoder pass
/// (the layers run somewhere at full width, sequentially for this
/// request) plus `stages − 1` activation hops and, per generated token,
/// the loop-back hop from the last stage to the first.
///
/// # Errors
///
/// Returns [`SimError::InvalidRequest`] if `stages` does not divide the
/// layer count or the workload is invalid.
pub fn pipelined_generate_timed(
    cfg: &GptConfig,
    stages: usize,
    workload: Workload,
) -> Result<PipelinedRun, SimError> {
    if stages == 0 || cfg.num_layers % stages != 0 {
        return Err(SimError::InvalidRequest(format!(
            "{} layers do not split into {stages} pipeline stages",
            cfg.num_layers
        )));
    }
    if workload.input_len == 0 {
        return Err(SimError::InvalidRequest("empty context".into()));
    }

    // Full-width per-token cost: a single-core program (no intra-layer
    // partitioning, no ring syncs inside layers).
    let par = ParallelConfig::new(0, 1);
    let builder = ProgramBuilder::new(cfg.clone(), par).map_err(SimError::Partition)?;
    let engine = TimingCore::new(CoreParams::default(), 1);

    // Inter-stage hop: one activation vector (emb FP16) over the same
    // 100 Gb/s links the ring uses.
    let link = RingModel::new(2);
    let hop = Cycles(
        link.hop_latency.0
            + (cfg.embedding_dim as f64 * 2.0 / link.payload_bytes_per_cycle()).ceil() as u64,
    );
    let hops_per_pass = (stages - 1) as u64;
    // Generated tokens additionally loop from the last stage back to the
    // first (the feedback loop); a single stage has no loop-back hop.
    let loopback = if stages > 1 { hop } else { Cycles::ZERO };

    let mut compute = StepTiming::zero();
    let mut transfer = Cycles::ZERO;
    for pos in 0..workload.input_len {
        let lm = pos + 1 == workload.input_len && workload.output_len > 0;
        compute.accumulate(&engine.time_step(&builder.token_step(pos, lm)));
        transfer += hop * hops_per_pass;
    }
    for out in 1..workload.output_len {
        compute
            .accumulate(&engine.time_step(&builder.token_step(workload.input_len + out - 1, true)));
        transfer += hop * hops_per_pass + loopback;
    }

    Ok(PipelinedRun {
        workload,
        stages,
        latency_ms: compute.total.to_millis() + transfer.to_millis(),
        transfer_ms: transfer.to_millis(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appliance::Appliance;

    #[test]
    fn pipelining_does_not_reduce_latency() {
        // The paper's §IV-B argument at 345M scale: 4-stage pipelined
        // parallelism is slower than 4-way intra-layer parallelism, and
        // no faster than a single device.
        let cfg = GptConfig::gpt2_345m();
        let w = Workload::new(8, 8);
        let pipe = pipelined_generate_timed(&cfg, 4, w).unwrap();
        let single = Appliance::timing_only(cfg.clone(), 1)
            .unwrap()
            .generate_timed(w.input_len, w.output_len)
            .unwrap();
        let intra = Appliance::timing_only(cfg, 4)
            .unwrap()
            .generate_timed(w.input_len, w.output_len)
            .unwrap();
        assert!(
            pipe.latency_ms >= single.total_latency_ms(),
            "pipelined {} ms must not beat single-device {} ms",
            pipe.latency_ms,
            single.total_latency_ms()
        );
        assert!(
            intra.total_latency_ms() < 0.7 * pipe.latency_ms,
            "intra-layer {} ms should clearly beat pipelined {} ms",
            intra.total_latency_ms(),
            pipe.latency_ms
        );
    }

    #[test]
    fn stage_count_must_divide_layers() {
        let cfg = GptConfig::tiny(); // 2 layers
        assert!(pipelined_generate_timed(&cfg, 3, Workload::new(2, 2)).is_err());
        assert!(pipelined_generate_timed(&cfg, 2, Workload::new(2, 2)).is_ok());
    }

    #[test]
    fn transfer_grows_with_stage_count() {
        let cfg = GptConfig::tiny();
        let w = Workload::new(4, 4);
        let p1 = pipelined_generate_timed(&cfg, 1, w).unwrap();
        let p2 = pipelined_generate_timed(&cfg, 2, w).unwrap();
        assert_eq!(p1.transfer_ms, 0.0);
        assert!(p2.transfer_ms > 0.0);
        assert!(p2.latency_ms > p1.latency_ms);
    }
}

//! The DFX appliance: the top-level user-facing API.
//!
//! An [`Appliance`] is a cluster of FPGAs running one model. Two modes
//! exist:
//!
//! - **timing-only** — no weights are materialised; every token step is
//!   compiled to a program and passed through the cycle model. This is
//!   how the full-scale models (345M/774M/1.5B) are evaluated, exactly
//!   like the paper's latency/throughput experiments.
//! - **functional** — test-scale weights execute bit-level on every
//!   simulated core *and* each step is timed, so generated text comes
//!   with its latency report.

use crate::cluster::FunctionalCluster;
use crate::error::SimError;
use dfx_core::{CoreParams, StepTiming, TimingCore};
use dfx_hw::PowerModel;
use dfx_isa::{OpClass, ParallelConfig, ProgramBuilder};
use dfx_model::{GptConfig, GptWeights, Workload};
use dfx_num::F16;
use serde::{Deserialize, Serialize};

/// Timing of one full text-generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedRun {
    /// The workload this run executed.
    pub workload: Workload,
    /// Accumulated timing of the summarization stage (all context
    /// tokens, LM head on the last).
    pub summarization: StepTiming,
    /// Accumulated timing of the generation stage.
    pub generation: StepTiming,
    /// Cluster size the run was timed for.
    pub num_fpgas: usize,
}

impl TimedRun {
    /// Summarization-stage latency in milliseconds.
    pub fn summarization_ms(&self) -> f64 {
        self.summarization.total.to_millis()
    }

    /// Generation-stage latency in milliseconds.
    pub fn generation_ms(&self) -> f64 {
        self.generation.total.to_millis()
    }

    /// End-to-end latency in milliseconds.
    pub fn total_latency_ms(&self) -> f64 {
        self.summarization_ms() + self.generation_ms()
    }

    /// Output tokens per second (the paper's throughput metric: output
    /// tokens over end-to-end latency, §VII-B).
    pub fn tokens_per_second(&self) -> f64 {
        self.workload.output_len as f64 / (self.total_latency_ms() / 1e3)
    }

    /// Merged per-class cycle attribution across both stages.
    pub fn breakdown(&self) -> LatencyBreakdown {
        let mut merged = self.summarization.clone();
        merged.accumulate(&self.generation);
        LatencyBreakdown::from_step(&merged)
    }

    /// Average datapath activity across the run (for the power model).
    pub fn activity(&self) -> f64 {
        let mut merged = self.summarization.clone();
        merged.accumulate(&self.generation);
        merged.activity()
    }

    /// Average appliance power in watts.
    pub fn power_w(&self) -> f64 {
        PowerModel::u280_dfx().average_watts(self.activity()) * self.num_fpgas as f64
    }

    /// Output tokens per joule.
    pub fn tokens_per_joule(&self) -> f64 {
        self.tokens_per_second() / self.power_w()
    }
}

/// Latency attribution by op class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Milliseconds attributed to each class (makespan advancement).
    pub ms: Vec<(OpClass, f64)>,
}

impl LatencyBreakdown {
    fn from_step(step: &StepTiming) -> Self {
        LatencyBreakdown {
            ms: step
                .by_class
                .iter()
                .map(|(k, v)| (*k, v.to_millis()))
                .collect(),
        }
    }

    /// Milliseconds of one class (0 if absent).
    pub fn class_ms(&self, class: OpClass) -> f64 {
        self.ms
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0.0, |(_, v)| *v)
    }

    /// The paper's Fig 15 shares: percentages over the five decoder
    /// classes (Self-Attention, FFN, Synchronization, LayerNorm,
    /// Residual), excluding embedding and LM head.
    pub fn fig15_shares(&self) -> [(OpClass, f64); 5] {
        let classes = [
            OpClass::SelfAttention,
            OpClass::Ffn,
            OpClass::Sync,
            OpClass::LayerNorm,
            OpClass::Residual,
        ];
        let total: f64 = classes.iter().map(|c| self.class_ms(*c)).sum();
        classes.map(|c| (c, 100.0 * self.class_ms(c) / total.max(f64::MIN_POSITIVE)))
    }
}

/// Result of a functional generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationRun {
    /// The generated token ids.
    pub tokens: Vec<u32>,
    /// The run's timing.
    pub timed: TimedRun,
}

enum Mode {
    TimingOnly,
    Functional(Box<FunctionalCluster>),
}

/// A simulated DFX appliance.
///
/// # Examples
///
/// ```
/// use dfx_sim::Appliance;
/// use dfx_model::GptConfig;
///
/// # fn main() -> Result<(), dfx_sim::SimError> {
/// let appliance = Appliance::timing_only(GptConfig::gpt2_345m(), 1)?;
/// let run = appliance.generate_timed(64, 64)?;
/// assert!(run.total_latency_ms() > 100.0);
/// # Ok(())
/// # }
/// ```
pub struct Appliance {
    cfg: GptConfig,
    num_fpgas: usize,
    builder: ProgramBuilder,
    timing: TimingCore,
    mode: Mode,
    /// Per-device HBM capacity in bytes (the U280's 8 GiB unless
    /// overridden by [`with_hbm_capacity`](Appliance::with_hbm_capacity)
    /// for capacity sweeps).
    hbm_capacity_bytes: u64,
    /// Paged K/V allocation, when enabled by
    /// [`with_kv_paging`](Appliance::with_kv_paging); `None` keeps the
    /// reserved [`KvPool`](crate::KvPool) path.
    kv_paging: Option<crate::PagedKvConfig>,
}

impl std::fmt::Debug for Appliance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Appliance")
            .field("model", &self.cfg.name)
            .field("num_fpgas", &self.num_fpgas)
            .field(
                "mode",
                &match self.mode {
                    Mode::TimingOnly => "timing-only",
                    Mode::Functional(_) => "functional",
                },
            )
            .finish()
    }
}

impl Appliance {
    /// Creates a timing-only appliance (no weights materialised; use for
    /// full-scale models).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Partition`] if the model does not divide
    /// across `num_fpgas`.
    pub fn timing_only(cfg: GptConfig, num_fpgas: usize) -> Result<Self, SimError> {
        Self::timing_only_with_params(cfg, num_fpgas, CoreParams::default())
    }

    /// Timing-only appliance with custom core parameters (the Fig 8a
    /// design-space exploration re-times attention with different
    /// `(d, l)` geometries).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Partition`] if the model does not divide
    /// across `num_fpgas`.
    pub fn timing_only_with_params(
        cfg: GptConfig,
        num_fpgas: usize,
        params: CoreParams,
    ) -> Result<Self, SimError> {
        let par = ParallelConfig::new(0, num_fpgas);
        Self::check_capacity(&cfg, par)?;
        let builder = ProgramBuilder::new(cfg.clone(), par).map_err(SimError::Partition)?;
        Ok(Appliance {
            cfg,
            num_fpgas,
            builder,
            timing: TimingCore::new(params, num_fpgas as u32),
            mode: Mode::TimingOnly,
            hbm_capacity_bytes: dfx_hw::HbmModel::default().capacity_bytes,
            kv_paging: None,
        })
    }

    /// Creates a functional appliance executing `weights` bit-level on
    /// every core.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Partition`] if the model does not divide
    /// across `num_fpgas`.
    pub fn functional(weights: GptWeights<F16>, num_fpgas: usize) -> Result<Self, SimError> {
        let cfg = weights.config.clone();
        let par = ParallelConfig::new(0, num_fpgas);
        let builder = ProgramBuilder::new(cfg.clone(), par).map_err(SimError::Partition)?;
        let cluster = FunctionalCluster::new(weights, num_fpgas)?;
        Ok(Appliance {
            cfg,
            num_fpgas,
            builder,
            timing: TimingCore::new(CoreParams::default(), num_fpgas as u32),
            mode: Mode::Functional(Box::new(cluster)),
            hbm_capacity_bytes: dfx_hw::HbmModel::default().capacity_bytes,
            kv_paging: None,
        })
    }

    /// Overrides the per-device HBM capacity (a what-if knob for the
    /// `memory` experiment's capacity sweeps; the default is the U280's
    /// 8 GiB). The override only moves the *K/V budget* consulted by
    /// [`memory_model`](Appliance::memory_model), the incremental
    /// executor's [`KvPool`](crate::KvPool) and the batched path; the
    /// paper's single-request timing paths are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Partition`] when the capacity cannot hold the
    /// weight shard plus at least one token of K/V — a device that can
    /// admit nothing is a partitioning problem, not a serving one.
    pub fn with_hbm_capacity(mut self, capacity_bytes: u64) -> Result<Self, SimError> {
        let model = self.memory_model();
        if model.weight_bytes + model.kv_bytes_per_token > capacity_bytes {
            return Err(SimError::Partition(format!(
                "{:.2} MB of HBM cannot hold {}'s {:.2} MB weight shard plus one token of K/V; \
                 use a larger capacity or a larger cluster",
                capacity_bytes as f64 / 1e6,
                self.cfg.name,
                model.weight_bytes as f64 / 1e6,
            )));
        }
        self.hbm_capacity_bytes = capacity_bytes;
        Ok(self)
    }

    /// Switches the incremental executor to paged K/V allocation
    /// ([`BlockPool`](crate::BlockPool)): admission takes blocks for the
    /// prompt rather than reserving the whole `input + output` claim,
    /// K/V grows page by page, exhaustion preempts under
    /// `cfg`'s [`PreemptionPolicy`](crate::PreemptionPolicy), and a
    /// non-zero `shared_prefix_tokens` enables the prefix cache. The
    /// reserved [`KvPool`](crate::KvPool) path stays the default — and
    /// stays bit-identical — when this is never called.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for a zero block size and
    /// [`SimError::Partition`] when the K/V budget is smaller than one
    /// block (a pool with zero blocks can admit nothing).
    pub fn with_kv_paging(mut self, cfg: crate::PagedKvConfig) -> Result<Self, SimError> {
        if cfg.block_tokens == 0 {
            return Err(SimError::InvalidRequest(
                "a K/V block must hold at least 1 token".into(),
            ));
        }
        let model = self.memory_model();
        if (model.max_resident_tokens() as usize) < cfg.block_tokens {
            return Err(SimError::Partition(format!(
                "the K/V budget of {} tokens cannot hold a single {}-token block; \
                 use a smaller block size or a larger capacity",
                model.max_resident_tokens(),
                cfg.block_tokens,
            )));
        }
        self.kv_paging = Some(cfg);
        Ok(self)
    }

    /// The paged-K/V configuration, when enabled.
    pub fn kv_paging(&self) -> Option<&crate::PagedKvConfig> {
        self.kv_paging.as_ref()
    }

    /// The per-device HBM capacity model: the always-resident weight
    /// shard (from the model's memory map at this cluster's partition)
    /// and the K/V bytes one context token occupies across this core's
    /// layers and local heads (keys + values, FP16). Its budget is the
    /// joint admission constraint for multi-request execution — every
    /// live member's `input + output` claim must fit next to the
    /// weights on *each* device.
    pub fn memory_model(&self) -> dfx_hw::MemoryModel {
        let par = ParallelConfig::new(0, self.num_fpgas);
        let map = dfx_isa::MemoryMap::for_model(&self.cfg, par);
        let kv_bytes_per_token = (self.cfg.num_layers as u64)
            * (par.heads_per_core(&self.cfg) as u64)
            * (self.cfg.head_dim() as u64)
            * 2 // keys and values
            * 2; // FP16
        dfx_hw::MemoryModel::new(
            self.hbm_capacity_bytes,
            map.weight_footprint(),
            kv_bytes_per_token,
        )
    }

    /// The model configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// Cluster size.
    pub fn num_fpgas(&self) -> usize {
        self.num_fpgas
    }

    /// The per-step program compiler (the batched path in `batch.rs`
    /// drives it directly).
    pub(crate) fn builder(&self) -> &ProgramBuilder {
        &self.builder
    }

    /// The cycle model (shared with the batched path in `batch.rs`).
    pub(crate) fn timing(&self) -> &TimingCore {
        &self.timing
    }

    /// Times one workload without executing data (available in both
    /// modes).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for empty or overlong
    /// workloads.
    pub fn generate_timed(
        &self,
        input_len: usize,
        output_len: usize,
    ) -> Result<TimedRun, SimError> {
        let workload = Workload::new(input_len, output_len);
        self.check_workload(workload)?;

        let mut summarization = StepTiming::zero();
        for pos in 0..input_len {
            let lm = pos + 1 == input_len && output_len > 0;
            let program = self.builder.token_step(pos, lm);
            summarization.accumulate(&self.timing.time_step(&program));
        }
        let mut generation = StepTiming::zero();
        for out in 1..output_len {
            let program = self.builder.token_step(input_len + out - 1, true);
            generation.accumulate(&self.timing.time_step(&program));
        }
        Ok(TimedRun {
            workload,
            summarization,
            generation,
            num_fpgas: self.num_fpgas,
        })
    }

    /// Generates text functionally (functional mode only), returning the
    /// tokens together with the run's timing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] in timing-only mode or for
    /// invalid workloads, and propagates cluster errors.
    pub fn generate(
        &mut self,
        input: &[u32],
        output_len: usize,
    ) -> Result<GenerationRun, SimError> {
        let timed = self.generate_timed(input.len(), output_len)?;
        match &mut self.mode {
            Mode::TimingOnly => Err(SimError::InvalidRequest(
                "functional generation requires Appliance::functional".into(),
            )),
            Mode::Functional(cluster) => {
                cluster.reset()?;
                let tokens = cluster.generate(input, output_len)?;
                Ok(GenerationRun { tokens, timed })
            }
        }
    }

    /// Verifies one core's weight partition plus fully grown KV cache
    /// fits the U280's 8 GB of HBM — the capacity constraint that forces
    /// model parallelism in the first place (paper §III-C). Makes the
    /// GPT-3 projection honest: `gpt3_13b` needs at least 4 FPGAs.
    fn check_capacity(cfg: &GptConfig, par: ParallelConfig) -> Result<(), SimError> {
        par.check(cfg).map_err(SimError::Partition)?;
        let map = dfx_isa::MemoryMap::for_model(cfg, par);
        let capacity = dfx_hw::HbmModel::default().capacity_bytes;
        let need = map.hbm_footprint();
        if need > capacity {
            return Err(SimError::Partition(format!(
                "{}'s per-core HBM footprint ({:.2} GB weights+KV) exceeds the U280's {:.0} GB; \
                 use a larger cluster",
                cfg.name,
                need as f64 / 1e9,
                capacity as f64 / 1e9,
            )));
        }
        Ok(())
    }

    pub(crate) fn check_workload(&self, w: Workload) -> Result<(), SimError> {
        if w.input_len == 0 {
            return Err(SimError::InvalidRequest("empty context".into()));
        }
        if w.input_len + w.output_len > self.cfg.max_seq_len {
            return Err(SimError::InvalidRequest(format!(
                "sequence of {} exceeds the model maximum {}",
                w.input_len + w.output_len,
                self.cfg.max_seq_len
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_run_reports_consistent_stages() {
        let a = Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let run = a.generate_timed(8, 4).unwrap();
        assert!(run.summarization_ms() > 0.0);
        assert!(run.generation_ms() > 0.0);
        assert!(
            (run.total_latency_ms() - run.summarization_ms() - run.generation_ms()).abs() < 1e-9
        );
        assert!(run.tokens_per_second() > 0.0);
    }

    #[test]
    fn one_output_token_means_no_generation_stage() {
        let a = Appliance::timing_only(GptConfig::tiny(), 1).unwrap();
        let run = a.generate_timed(8, 1).unwrap();
        assert_eq!(run.generation.total.0, 0);
        assert!(run.summarization.total.0 > 0);
    }

    #[test]
    fn latency_is_monotone_in_both_dimensions() {
        let a = Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let base = a.generate_timed(8, 4).unwrap().total_latency_ms();
        let more_in = a.generate_timed(16, 4).unwrap().total_latency_ms();
        let more_out = a.generate_timed(8, 8).unwrap().total_latency_ms();
        assert!(more_in > base);
        assert!(more_out > base);
    }

    #[test]
    fn functional_mode_generates_and_times() {
        let w = GptWeights::synthetic(&GptConfig::tiny()).cast::<F16>();
        let mut a = Appliance::functional(w, 2).unwrap();
        let run = a.generate(&[1, 2, 3, 4], 5).unwrap();
        assert_eq!(run.tokens.len(), 5);
        assert!(run.timed.total_latency_ms() > 0.0);
        // Repeat runs are deterministic thanks to the internal reset.
        let run2 = a.generate(&[1, 2, 3, 4], 5).unwrap();
        assert_eq!(run.tokens, run2.tokens);
    }

    #[test]
    fn timing_only_mode_rejects_functional_generation() {
        let mut a = Appliance::timing_only(GptConfig::tiny(), 1).unwrap();
        assert!(matches!(
            a.generate(&[1, 2], 2),
            Err(SimError::InvalidRequest(_))
        ));
    }

    #[test]
    fn fig15_shares_sum_to_100() {
        let a = Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let run = a.generate_timed(4, 4).unwrap();
        let shares = run.breakdown().fig15_shares();
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 100.0).abs() < 1e-6, "{sum}");
    }

    #[test]
    fn capacity_check_gates_large_models() {
        // GPT-3 13B weights alone are ~25.7 GB of FP16: one or two U280s
        // cannot hold a partition; four can.
        let err = Appliance::timing_only(GptConfig::gpt3_13b(), 2).unwrap_err();
        assert!(matches!(err, SimError::Partition(m) if m.contains("HBM footprint")));
        assert!(Appliance::timing_only(GptConfig::gpt3_13b(), 4).is_ok());
        // All paper configurations fit at their published cluster sizes.
        assert!(Appliance::timing_only(GptConfig::gpt2_345m(), 1).is_ok());
        assert!(Appliance::timing_only(GptConfig::gpt2_1_5b(), 4).is_ok());
    }

    #[test]
    fn memory_model_matches_the_paper_geometry() {
        // GPT-2 1.5B across 4 U280s: each device holds a quarter of the
        // decoder weights (~0.68 GB) plus its vocabulary slice of the LM
        // head, and one context token's K/V costs
        // 48 layers x 6 local heads x 64 dims x 2 (K+V) x 2 B = 72 KiB.
        let a = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4).unwrap();
        let m = a.memory_model();
        assert_eq!(m.capacity_bytes, 8 * (1 << 30));
        assert_eq!(m.kv_bytes_per_token, 48 * 6 * 64 * 2 * 2);
        let decoder_share = GptConfig::gpt2_1_5b().decoder_weight_bytes() / 4;
        assert!(
            m.weight_bytes > decoder_share && m.weight_bytes < decoder_share + (100 << 20),
            "weight shard {} vs decoder share {decoder_share}",
            m.weight_bytes
        );
        // The budget holds two orders of magnitude more context than one
        // max-length sequence — the headroom continuous batching spends.
        assert!(m.max_resident_tokens() > 50 * 1024);
    }

    #[test]
    fn hbm_capacity_override_moves_the_kv_budget() {
        let a = Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let weights = a.memory_model().weight_bytes;
        let per_token = a.memory_model().kv_bytes_per_token;
        let small = Appliance::timing_only(GptConfig::tiny(), 2)
            .unwrap()
            .with_hbm_capacity(weights + 64 * per_token)
            .unwrap();
        assert_eq!(small.memory_model().max_resident_tokens(), 64);
        // A capacity below the weight shard is a partitioning error.
        let err = Appliance::timing_only(GptConfig::tiny(), 2)
            .unwrap()
            .with_hbm_capacity(weights)
            .unwrap_err();
        assert!(matches!(err, SimError::Partition(_)), "{err:?}");
    }

    #[test]
    fn power_scales_with_cluster_size() {
        let a1 = Appliance::timing_only(GptConfig::tiny(), 1).unwrap();
        let a2 = Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let p1 = a1.generate_timed(4, 4).unwrap().power_w();
        let p2 = a2.generate_timed(4, 4).unwrap().power_w();
        assert!(p2 > 1.5 * p1);
    }
}

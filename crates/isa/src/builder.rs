//! Lowers GPT-2 inference onto the DFX ISA.
//!
//! [`ProgramBuilder`] emits one [`Program`] per token step, implementing
//! the paper's Algorithm 1 with its hardware-aware details:
//!
//! - intra-layer model parallelism (Fig 6): Q/K/V head-wise, FC/FFN
//!   column-wise, four ring synchronisations per decoder layer;
//! - the *Value-first* instruction order (§V-B) so the DMA transpose of V
//!   overlaps the K and Q projections;
//! - softmax lowered to `sub, exp, accum, recip, mul` and LayerNorm to
//!   `accum, mul, sub, mul, add, recip_sqrt` vector/scalar instructions
//!   (§IV-C), with divisions by compile-time constants replaced by
//!   multiplications (§V-C);
//! - LM head = `MM` against WTEᵀ with fused reduce-max/argmax, followed by
//!   an argmax ring reduction over vocabulary partitions.

use crate::instr::{
    DmaDir, DmaInstr, Instr, MatrixInstr, MatrixKind, ReduceInstr, ReduceKind, ReduceMax,
    RouterInstr, RouterOp, ScalarInstr, ScalarOpKind, VReg, VSlice, VectorInstr, VectorOpKind,
};
use crate::program::{OpClass, Program, StepMeta};
use crate::tensor_ref::{EmbedTable, KvKind, LnParam, TensorRef, WeightKind};
use dfx_model::{GptConfig, LAYER_NORM_EPS};
use serde::{Deserialize, Serialize};

/// Fixed vector-register allocation used by the builder (the executor and
/// tests refer to these by name).
pub mod regs {
    use crate::instr::{SReg, VReg};

    /// Residual stream (layer input / output).
    pub const RESIDUAL: VReg = VReg(0);
    /// WTE row.
    pub const WTE_ROW: VReg = VReg(1);
    /// WPE row.
    pub const WPE_ROW: VReg = VReg(2);
    /// LayerNorm output.
    pub const LNORM: VReg = VReg(3);
    /// Value partial (this core's heads).
    pub const VALUE: VReg = VReg(4);
    /// Key partial.
    pub const KEY: VReg = VReg(5);
    /// Query partial.
    pub const QUERY: VReg = VReg(6);
    /// Attention score row.
    pub const SCORE: VReg = VReg(7);
    /// Softmax probabilities.
    pub const PROBS: VReg = VReg(8);
    /// Attention context partial (per-head slices).
    pub const ATTN: VReg = VReg(9);
    /// Attention context after all-gather.
    pub const ATTN_FULL: VReg = VReg(10);
    /// Attention projection partial.
    pub const PROJ: VReg = VReg(11);
    /// Attention projection after all-gather.
    pub const PROJ_FULL: VReg = VReg(12);
    /// First residual sum.
    pub const RES1: VReg = VReg(13);
    /// Second LayerNorm output.
    pub const LNORM2: VReg = VReg(14);
    /// FFN hidden partial.
    pub const FFN1: VReg = VReg(15);
    /// FFN hidden after all-gather.
    pub const FFN1_FULL: VReg = VReg(16);
    /// FFN output partial.
    pub const FFN2: VReg = VReg(17);
    /// FFN output after all-gather.
    pub const FFN2_FULL: VReg = VReg(18);
    /// LayerNorm γ staging.
    pub const LN_GAMMA: VReg = VReg(19);
    /// LayerNorm β staging.
    pub const LN_BETA: VReg = VReg(20);
    /// LayerNorm centered temporary (x − µ).
    pub const LN_CENTERED: VReg = VReg(21);
    /// LayerNorm squared temporary.
    pub const LN_SQUARED: VReg = VReg(22);
    /// Final hidden state entering the LM head.
    pub const LM_HIDDEN: VReg = VReg(23);
    /// LM head logits partial.
    pub const LOGITS: VReg = VReg(24);

    /// Score row max (softmax stabilisation).
    pub const S_ROWMAX: SReg = SReg(0);
    /// Softmax denominator / its reciprocal.
    pub const S_DENOM: SReg = SReg(1);
    /// LayerNorm mean.
    pub const S_MEAN: SReg = SReg(2);
    /// LayerNorm variance / reciprocal std.
    pub const S_RSTD: SReg = SReg(3);
    /// LM head argmax index (local, then global).
    pub const S_ARGMAX: SReg = SReg(4);
    /// LM head max logit.
    pub const S_MAXLOGIT: SReg = SReg(5);
}

/// Placement of one core within the homogeneous cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// This core's id (0-based).
    pub core_id: usize,
    /// Cluster size (1, 2 or 4 in the paper; any divisor of the head
    /// count works).
    pub num_cores: usize,
}

impl ParallelConfig {
    /// Creates a placement.
    ///
    /// # Panics
    ///
    /// Panics if `core_id >= num_cores` or `num_cores == 0`.
    pub fn new(core_id: usize, num_cores: usize) -> Self {
        assert!(num_cores > 0, "cluster must contain at least one core");
        assert!(
            core_id < num_cores,
            "core_id {core_id} >= num_cores {num_cores}"
        );
        ParallelConfig { core_id, num_cores }
    }

    /// Checks the model divides evenly across the cluster (head-wise for
    /// attention, column-wise for FC layers — paper Fig 6).
    ///
    /// # Errors
    ///
    /// Returns a description of the first indivisibility.
    pub fn check(&self, cfg: &GptConfig) -> Result<(), String> {
        if cfg.num_heads % self.num_cores != 0 {
            return Err(format!(
                "{} heads do not divide across {} cores",
                cfg.num_heads, self.num_cores
            ));
        }
        if cfg.embedding_dim % self.num_cores != 0 {
            return Err(format!(
                "embedding dim {} does not divide across {} cores",
                cfg.embedding_dim, self.num_cores
            ));
        }
        if cfg.ffn_dim % self.num_cores != 0 {
            return Err(format!(
                "ffn dim {} does not divide across {} cores",
                cfg.ffn_dim, self.num_cores
            ));
        }
        Ok(())
    }

    /// Attention heads owned by this core.
    pub fn heads_per_core(&self, cfg: &GptConfig) -> usize {
        cfg.num_heads / self.num_cores
    }

    /// Columns of each emb-wide projection owned by this core.
    pub fn emb_part(&self, cfg: &GptConfig) -> usize {
        cfg.embedding_dim / self.num_cores
    }

    /// Columns of the FFN hidden owned by this core.
    pub fn ffn_part(&self, cfg: &GptConfig) -> usize {
        cfg.ffn_dim / self.num_cores
    }

    /// This core's vocabulary slice `[start, end)` for the LM head
    /// (column-split like the FC layers; the remainder goes to the last
    /// core).
    pub fn vocab_range(&self, cfg: &GptConfig) -> (usize, usize) {
        let per = cfg.vocab_size.div_ceil(self.num_cores);
        let start = (per * self.core_id).min(cfg.vocab_size);
        let end = (start + per).min(cfg.vocab_size);
        (start, end)
    }
}

/// Ordering of the Q/K/V projections within self-attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QkvOrder {
    /// The paper's order (§V-B): Value first, so the DMA transpose of V
    /// overlaps the Key and Query projections.
    #[default]
    ValueFirst,
    /// The naive order (Q, K, V): used by the transpose-hiding ablation —
    /// the `Score × Value` reads then stall on the transpose unit.
    ValueLast,
}

/// Compiler options for [`ProgramBuilder`] (ablation switches; the
/// defaults reproduce the paper's design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BuilderOptions {
    /// Q/K/V emission order.
    pub qkv_order: QkvOrder,
}

/// Builds per-token-step DFX programs for one core.
///
/// # Examples
///
/// ```
/// use dfx_isa::{ParallelConfig, ProgramBuilder};
/// use dfx_model::GptConfig;
///
/// let builder = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 2)).unwrap();
/// let program = builder.token_step(0, false);
/// assert!(program.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    cfg: GptConfig,
    par: ParallelConfig,
    options: BuilderOptions,
}

impl ProgramBuilder {
    /// Creates a builder after checking divisibility.
    ///
    /// # Errors
    ///
    /// Returns an error if the model does not partition evenly over the
    /// cluster.
    pub fn new(cfg: GptConfig, par: ParallelConfig) -> Result<Self, String> {
        Self::with_options(cfg, par, BuilderOptions::default())
    }

    /// Creates a builder with non-default compiler options (ablations).
    ///
    /// # Errors
    ///
    /// Returns an error if the model does not partition evenly over the
    /// cluster.
    pub fn with_options(
        cfg: GptConfig,
        par: ParallelConfig,
        options: BuilderOptions,
    ) -> Result<Self, String> {
        par.check(&cfg)?;
        Ok(ProgramBuilder { cfg, par, options })
    }

    /// The compiler options in effect.
    pub fn options(&self) -> BuilderOptions {
        self.options
    }

    /// The model configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// The placement.
    pub fn parallel(&self) -> ParallelConfig {
        self.par
    }

    /// Builds the program for the token at `token_pos` (0-based). When
    /// `lm_head` is set the step ends with the final LayerNorm, the LM
    /// head and the cross-core argmax (last summarization token and all
    /// generation tokens).
    ///
    /// # Panics
    ///
    /// Panics if `token_pos` exceeds the model's maximum sequence length.
    pub fn token_step(&self, token_pos: usize, lm_head: bool) -> Program {
        assert!(
            token_pos < self.cfg.max_seq_len,
            "token position {token_pos} exceeds max sequence length {}",
            self.cfg.max_seq_len
        );
        let mut p = Program::new(StepMeta {
            token_pos: token_pos as u32,
            lm_head,
            core_id: self.par.core_id as u32,
            num_cores: self.par.num_cores as u32,
        });
        self.emit_embedding(&mut p, token_pos);
        for layer in 0..self.cfg.num_layers {
            self.emit_decoder_layer(&mut p, layer as u16, token_pos);
        }
        if lm_head {
            self.emit_lm_head(&mut p);
        }
        p
    }

    /// Token embedding: fetch the current token id, gather WTE/WPE rows
    /// and add them into the residual register.
    fn emit_embedding(&self, p: &mut Program, token_pos: usize) {
        let emb = self.cfg.embedding_dim as u32;
        let bytes = u64::from(emb) * 2;
        p.push(
            OpClass::Embed,
            Instr::Dma(DmaInstr {
                dir: DmaDir::Load,
                tensor: TensorRef::TokenIo,
                row: token_pos as u32,
                reg: None,
                bytes: 4,
                transpose: false,
            }),
        );
        // WTE row index is the runtime token id; the controller resolves it.
        p.push(
            OpClass::Embed,
            Instr::Dma(DmaInstr {
                dir: DmaDir::Load,
                tensor: TensorRef::Embed {
                    table: EmbedTable::Wte,
                },
                row: 0,
                reg: Some(VSlice::full(regs::WTE_ROW, emb)),
                bytes,
                transpose: false,
            }),
        );
        p.push(
            OpClass::Embed,
            Instr::Dma(DmaInstr {
                dir: DmaDir::Load,
                tensor: TensorRef::Embed {
                    table: EmbedTable::Wpe,
                },
                row: token_pos as u32,
                reg: Some(VSlice::full(regs::WPE_ROW, emb)),
                bytes,
                transpose: false,
            }),
        );
        p.push(
            OpClass::Embed,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Add,
                a: regs::WTE_ROW,
                b: Some(regs::WPE_ROW),
                s: None,
                dst: regs::RESIDUAL,
                len: emb,
            }),
        );
    }

    /// LayerNorm over `src` (length `emb`) into `dst`, lowered to the
    /// paper's vector/scalar sequence.
    fn emit_layer_norm(
        &self,
        p: &mut Program,
        gamma: TensorRef,
        beta: TensorRef,
        src: VReg,
        dst: VReg,
    ) {
        let emb = self.cfg.embedding_dim as u32;
        let bytes = u64::from(emb) * 2;
        let inv_n = 1.0 / self.cfg.embedding_dim as f32;
        // γ/β are fetched to the register file through load instructions
        // (paper §IV-C).
        for (tensor, reg) in [(gamma, regs::LN_GAMMA), (beta, regs::LN_BETA)] {
            p.push(
                OpClass::LayerNorm,
                Instr::Dma(DmaInstr {
                    dir: DmaDir::Load,
                    tensor,
                    row: 0,
                    reg: Some(VSlice::full(reg, emb)),
                    bytes,
                    transpose: false,
                }),
            );
        }
        // mean = accum(x) * (1/emb)
        p.push(
            OpClass::LayerNorm,
            Instr::Reduce(ReduceInstr {
                kind: ReduceKind::Sum,
                v: src,
                len: emb,
                dst: regs::S_MEAN,
            }),
        );
        p.push(
            OpClass::LayerNorm,
            Instr::Scalar(ScalarInstr {
                op: ScalarOpKind::Mul,
                a: regs::S_MEAN,
                b: None,
                imm: Some(inv_n),
                dst: regs::S_MEAN,
            }),
        );
        // centered = x - mean
        p.push(
            OpClass::LayerNorm,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::SubScalar,
                a: src,
                b: None,
                s: Some(regs::S_MEAN),
                dst: regs::LN_CENTERED,
                len: emb,
            }),
        );
        // var = accum(centered^2) * (1/emb)
        p.push(
            OpClass::LayerNorm,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Mul,
                a: regs::LN_CENTERED,
                b: Some(regs::LN_CENTERED),
                s: None,
                dst: regs::LN_SQUARED,
                len: emb,
            }),
        );
        p.push(
            OpClass::LayerNorm,
            Instr::Reduce(ReduceInstr {
                kind: ReduceKind::Sum,
                v: regs::LN_SQUARED,
                len: emb,
                dst: regs::S_RSTD,
            }),
        );
        p.push(
            OpClass::LayerNorm,
            Instr::Scalar(ScalarInstr {
                op: ScalarOpKind::Mul,
                a: regs::S_RSTD,
                b: None,
                imm: Some(inv_n),
                dst: regs::S_RSTD,
            }),
        );
        // rstd = recip_sqrt(var + eps)
        p.push(
            OpClass::LayerNorm,
            Instr::Scalar(ScalarInstr {
                op: ScalarOpKind::Add,
                a: regs::S_RSTD,
                b: None,
                imm: Some(LAYER_NORM_EPS as f32),
                dst: regs::S_RSTD,
            }),
        );
        p.push(
            OpClass::LayerNorm,
            Instr::Scalar(ScalarInstr {
                op: ScalarOpKind::RecipSqrt,
                a: regs::S_RSTD,
                b: None,
                imm: None,
                dst: regs::S_RSTD,
            }),
        );
        // dst = centered * rstd * gamma + beta
        p.push(
            OpClass::LayerNorm,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::MulScalar,
                a: regs::LN_CENTERED,
                b: None,
                s: Some(regs::S_RSTD),
                dst,
                len: emb,
            }),
        );
        p.push(
            OpClass::LayerNorm,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Mul,
                a: dst,
                b: Some(regs::LN_GAMMA),
                s: None,
                dst,
                len: emb,
            }),
        );
        p.push(
            OpClass::LayerNorm,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Add,
                a: dst,
                b: Some(regs::LN_BETA),
                s: None,
                dst,
                len: emb,
            }),
        );
    }

    /// One `Conv1D` (bias prefetch + matrix instruction).
    #[allow(clippy::too_many_arguments)]
    fn emit_conv1d(
        &self,
        p: &mut Program,
        class: OpClass,
        layer: u16,
        kind: WeightKind,
        src: VSlice,
        dst: VSlice,
        gelu: bool,
    ) {
        p.push(
            class,
            Instr::Dma(DmaInstr {
                dir: DmaDir::Load,
                tensor: TensorRef::Bias { layer, kind },
                row: 0,
                reg: None,
                bytes: u64::from(dst.len) * 2,
                transpose: false,
            }),
        );
        p.push(
            class,
            Instr::Matrix(MatrixInstr {
                kind: MatrixKind::Conv1d,
                src,
                weight: TensorRef::Weight { layer, kind },
                bias: Some(TensorRef::Bias { layer, kind }),
                dst,
                rows: src.len,
                cols: dst.len,
                valid_cols: dst.len,
                scale: None,
                gelu,
                reduce_max: ReduceMax::None,
            }),
        );
    }

    /// Ring all-gather of a partial vector (no-op and not emitted for a
    /// single-core cluster; callers use the partial register directly).
    fn emit_allgather(&self, p: &mut Program, src: VReg, part_len: u32, dst: VReg) {
        debug_assert!(self.par.num_cores > 1);
        p.push(
            OpClass::Sync,
            Instr::Router(RouterInstr {
                op: RouterOp::AllGather,
                src: VSlice::full(src, part_len),
                dst: VSlice::full(dst, part_len * self.par.num_cores as u32),
                idx: None,
                max: None,
                bytes: u64::from(part_len) * 2,
            }),
        );
    }

    /// One decoder layer (Algorithm 1).
    fn emit_decoder_layer(&self, p: &mut Program, layer: u16, token_pos: usize) {
        let cfg = &self.cfg;
        let emb = cfg.embedding_dim as u32;
        let part = self.par.emb_part(cfg) as u32;
        let ffn_part = self.par.ffn_part(cfg) as u32;
        let heads = self.par.heads_per_core(cfg);
        let dh = cfg.head_dim() as u32;
        let t = (token_pos + 1) as u32; // context length including this token
        let multi = self.par.num_cores > 1;

        // -- LayerNorm 1 --------------------------------------------------
        self.emit_layer_norm(
            p,
            TensorRef::Ln {
                layer,
                param: LnParam::Ln1Gamma,
            },
            TensorRef::Ln {
                layer,
                param: LnParam::Ln1Beta,
            },
            regs::RESIDUAL,
            regs::LNORM,
        );

        // -- Self-attention projections. The paper computes Value first
        // (transpose hiding, §V-B); the ablation order computes it last.
        let ln_full = VSlice::full(regs::LNORM, emb);
        let emit_proj = |p: &mut Program, kind: WeightKind, dst: crate::instr::VReg| {
            self.emit_conv1d(
                p,
                OpClass::SelfAttention,
                layer,
                kind,
                ln_full,
                VSlice::full(dst, part),
                false,
            );
            // K and V rows stream to their per-head HBM cache regions as
            // soon as they are produced (V through the transpose unit).
            let kv = match kind {
                WeightKind::Key => Some((KvKind::Key, false)),
                WeightKind::Value => Some((KvKind::Value, true)),
                _ => None,
            };
            if let Some((kv_kind, transpose)) = kv {
                for h in 0..heads {
                    p.push(
                        OpClass::SelfAttention,
                        Instr::Dma(DmaInstr {
                            dir: DmaDir::Store,
                            tensor: TensorRef::Kv {
                                layer,
                                head: h as u16,
                                kind: kv_kind,
                            },
                            row: token_pos as u32,
                            reg: Some(VSlice {
                                reg: dst,
                                offset: h as u32 * dh,
                                len: dh,
                            }),
                            bytes: u64::from(dh) * 2,
                            transpose,
                        }),
                    );
                }
            }
        };
        match self.options.qkv_order {
            QkvOrder::ValueFirst => {
                emit_proj(p, WeightKind::Value, regs::VALUE);
                emit_proj(p, WeightKind::Key, regs::KEY);
                emit_proj(p, WeightKind::Query, regs::QUERY);
            }
            QkvOrder::ValueLast => {
                emit_proj(p, WeightKind::Query, regs::QUERY);
                emit_proj(p, WeightKind::Key, regs::KEY);
                emit_proj(p, WeightKind::Value, regs::VALUE);
            }
        }

        // -- Per-head attention: MaskedMM, softmax, MM --------------------
        let scale = 1.0 / (cfg.head_dim() as f32).sqrt();
        for h in 0..heads {
            let h32 = h as u32;
            // score = (q_h · K_hᵀ) * scale, fused row-max for stability.
            p.push(
                OpClass::SelfAttention,
                Instr::Matrix(MatrixInstr {
                    kind: MatrixKind::MaskedMm,
                    src: VSlice {
                        reg: regs::QUERY,
                        offset: h32 * dh,
                        len: dh,
                    },
                    weight: TensorRef::Kv {
                        layer,
                        head: h as u16,
                        kind: KvKind::Key,
                    },
                    bias: None,
                    dst: VSlice::full(regs::SCORE, t),
                    rows: dh,
                    cols: t,
                    valid_cols: t, // incremental decoding: no future column exists
                    scale: Some(scale),
                    gelu: false,
                    reduce_max: ReduceMax::Max(regs::S_ROWMAX),
                }),
            );
            // softmax(score - max): sub, exp, accum, recip, mul (§IV-C).
            p.push(
                OpClass::SelfAttention,
                Instr::Vector(VectorInstr {
                    op: VectorOpKind::SubScalar,
                    a: regs::SCORE,
                    b: None,
                    s: Some(regs::S_ROWMAX),
                    dst: regs::SCORE,
                    len: t,
                }),
            );
            p.push(
                OpClass::SelfAttention,
                Instr::Vector(VectorInstr {
                    op: VectorOpKind::Exp,
                    a: regs::SCORE,
                    b: None,
                    s: None,
                    dst: regs::PROBS,
                    len: t,
                }),
            );
            p.push(
                OpClass::SelfAttention,
                Instr::Reduce(ReduceInstr {
                    kind: ReduceKind::Sum,
                    v: regs::PROBS,
                    len: t,
                    dst: regs::S_DENOM,
                }),
            );
            p.push(
                OpClass::SelfAttention,
                Instr::Scalar(ScalarInstr {
                    op: ScalarOpKind::Recip,
                    a: regs::S_DENOM,
                    b: None,
                    imm: None,
                    dst: regs::S_DENOM,
                }),
            );
            p.push(
                OpClass::SelfAttention,
                Instr::Vector(VectorInstr {
                    op: VectorOpKind::MulScalar,
                    a: regs::PROBS,
                    b: None,
                    s: Some(regs::S_DENOM),
                    dst: regs::PROBS,
                    len: t,
                }),
            );
            // attn_h = probs · V_h (V was stored transposed for this read).
            p.push(
                OpClass::SelfAttention,
                Instr::Matrix(MatrixInstr {
                    kind: MatrixKind::Mm,
                    src: VSlice::full(regs::PROBS, t),
                    weight: TensorRef::Kv {
                        layer,
                        head: h as u16,
                        kind: KvKind::Value,
                    },
                    bias: None,
                    dst: VSlice {
                        reg: regs::ATTN,
                        offset: h32 * dh,
                        len: dh,
                    },
                    rows: t,
                    cols: dh,
                    valid_cols: dh,
                    scale: None,
                    gelu: false,
                    reduce_max: ReduceMax::None,
                }),
            );
        }

        // -- Sync 1: gather attention context ----------------------------
        let attn_full = if multi {
            self.emit_allgather(p, regs::ATTN, part, regs::ATTN_FULL);
            regs::ATTN_FULL
        } else {
            regs::ATTN
        };

        // -- Attention output projection + Sync 2 ------------------------
        self.emit_conv1d(
            p,
            OpClass::SelfAttention,
            layer,
            WeightKind::AttnProj,
            VSlice::full(attn_full, emb),
            VSlice::full(regs::PROJ, part),
            false,
        );
        let proj_full = if multi {
            self.emit_allgather(p, regs::PROJ, part, regs::PROJ_FULL);
            regs::PROJ_FULL
        } else {
            regs::PROJ
        };

        // -- Residual 1 ----------------------------------------------------
        p.push(
            OpClass::Residual,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Add,
                a: proj_full,
                b: Some(regs::RESIDUAL),
                s: None,
                dst: regs::RES1,
                len: emb,
            }),
        );

        // -- LayerNorm 2 ----------------------------------------------------
        self.emit_layer_norm(
            p,
            TensorRef::Ln {
                layer,
                param: LnParam::Ln2Gamma,
            },
            TensorRef::Ln {
                layer,
                param: LnParam::Ln2Beta,
            },
            regs::RES1,
            regs::LNORM2,
        );

        // -- FFN: up (GELU fused) + Sync 3, down + Sync 4 ------------------
        self.emit_conv1d(
            p,
            OpClass::Ffn,
            layer,
            WeightKind::Ffn1,
            VSlice::full(regs::LNORM2, emb),
            VSlice::full(regs::FFN1, ffn_part),
            true,
        );
        let ffn1_full = if multi {
            self.emit_allgather(p, regs::FFN1, ffn_part, regs::FFN1_FULL);
            regs::FFN1_FULL
        } else {
            regs::FFN1
        };
        self.emit_conv1d(
            p,
            OpClass::Ffn,
            layer,
            WeightKind::Ffn2,
            VSlice::full(ffn1_full, cfg.ffn_dim as u32),
            VSlice::full(regs::FFN2, part),
            false,
        );
        let ffn2_full = if multi {
            self.emit_allgather(p, regs::FFN2, part, regs::FFN2_FULL);
            regs::FFN2_FULL
        } else {
            regs::FFN2
        };

        // -- Residual 2: becomes next layer's input ------------------------
        p.push(
            OpClass::Residual,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Add,
                a: ffn2_full,
                b: Some(regs::RES1),
                s: None,
                dst: regs::RESIDUAL,
                len: emb,
            }),
        );
    }

    /// Final LayerNorm, LM head matmul with fused argmax, argmax ring
    /// reduction and token write-back.
    fn emit_lm_head(&self, p: &mut Program) {
        let cfg = &self.cfg;
        let emb = cfg.embedding_dim as u32;
        let last_layer = cfg.num_layers as u16; // ln_f stored past the layers
        self.emit_layer_norm(
            p,
            TensorRef::Ln {
                layer: last_layer,
                param: LnParam::LnFGamma,
            },
            TensorRef::Ln {
                layer: last_layer,
                param: LnParam::LnFBeta,
            },
            regs::RESIDUAL,
            regs::LM_HIDDEN,
        );
        let (v0, v1) = self.par.vocab_range(cfg);
        let vocab_part = (v1 - v0) as u32;
        p.push(
            OpClass::LmHead,
            Instr::Matrix(MatrixInstr {
                kind: MatrixKind::Mm,
                src: VSlice::full(regs::LM_HIDDEN, emb),
                weight: TensorRef::Weight {
                    layer: 0,
                    kind: WeightKind::LmHead,
                },
                bias: None,
                dst: VSlice::full(regs::LOGITS, vocab_part),
                rows: emb,
                cols: vocab_part,
                valid_cols: vocab_part,
                scale: None,
                gelu: false,
                reduce_max: ReduceMax::ArgMax {
                    idx: regs::S_ARGMAX,
                    max: regs::S_MAXLOGIT,
                },
            }),
        );
        if self.par.num_cores > 1 {
            p.push(
                OpClass::Sync,
                Instr::Router(RouterInstr {
                    op: RouterOp::AllReduceArgMax,
                    src: VSlice::full(regs::LOGITS, 0),
                    dst: VSlice::full(regs::LOGITS, 0),
                    idx: Some(regs::S_ARGMAX),
                    max: Some(regs::S_MAXLOGIT),
                    bytes: 8,
                }),
            );
        }
        p.push(
            OpClass::LmHead,
            Instr::Dma(DmaInstr {
                dir: DmaDir::Store,
                tensor: TensorRef::TokenIo,
                row: 0,
                reg: None,
                bytes: 4,
                transpose: false,
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::OpClass;

    fn builder(cores: usize) -> ProgramBuilder {
        ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, cores)).unwrap()
    }

    #[test]
    fn programs_validate_for_all_cluster_sizes() {
        for cores in [1, 2] {
            let b = builder(cores);
            for pos in [0, 3, 7] {
                let p = b.token_step(pos, true);
                p.validate()
                    .unwrap_or_else(|e| panic!("{cores} cores pos {pos}: {e}"));
            }
        }
    }

    #[test]
    fn four_syncs_per_layer_in_multicore_mode() {
        let b = builder(2);
        let p = b.token_step(0, false);
        let syncs = p
            .op_class_histogram()
            .get(&OpClass::Sync)
            .copied()
            .unwrap_or(0);
        assert_eq!(
            syncs,
            4 * b.config().num_layers,
            "paper: 4 synchronisations per decoder layer"
        );
    }

    #[test]
    fn single_core_programs_have_no_router_instructions() {
        let b = builder(1);
        let p = b.token_step(0, true);
        assert_eq!(p.class_histogram().get("router"), None);
        p.validate().unwrap();
    }

    #[test]
    fn lm_head_only_on_request() {
        let b = builder(2);
        let without = b.token_step(0, false);
        let with = b.token_step(0, true);
        assert!(!without.op_class_histogram().contains_key(&OpClass::LmHead));
        assert!(with.op_class_histogram()[&OpClass::LmHead] >= 2);
        assert!(with.len() > without.len());
    }

    #[test]
    fn value_is_computed_before_key_and_query() {
        // Transpose hiding (§V-B): the V projection must precede K and Q.
        let b = builder(2);
        let p = b.token_step(0, false);
        let pos_of = |kind: WeightKind| {
            p.instrs()
                .iter()
                .position(|ai| {
                    matches!(ai.instr, Instr::Matrix(m)
                        if m.weight == TensorRef::Weight { layer: 0, kind })
                })
                .unwrap()
        };
        assert!(pos_of(WeightKind::Value) < pos_of(WeightKind::Key));
        assert!(pos_of(WeightKind::Key) < pos_of(WeightKind::Query));
    }

    #[test]
    fn value_store_uses_transpose_unit_and_key_store_does_not() {
        let b = builder(2);
        let p = b.token_step(2, false);
        let mut saw_v = false;
        let mut saw_k = false;
        for ai in p.instrs() {
            if let Instr::Dma(d) = &ai.instr {
                if let TensorRef::Kv { kind, .. } = d.tensor {
                    match kind {
                        KvKind::Value => {
                            assert!(d.transpose, "V store must transpose");
                            saw_v = true;
                        }
                        KvKind::Key => {
                            assert!(!d.transpose, "K store must not transpose");
                            saw_k = true;
                        }
                    }
                }
            }
        }
        assert!(saw_v && saw_k);
    }

    #[test]
    fn score_width_tracks_context_length() {
        let b = builder(2);
        for pos in [0usize, 5, 9] {
            let p = b.token_step(pos, false);
            let score_cols = p
                .instrs()
                .iter()
                .find_map(|ai| match ai.instr {
                    Instr::Matrix(m) if m.kind == MatrixKind::MaskedMm => Some(m.cols),
                    _ => None,
                })
                .unwrap();
            assert_eq!(score_cols, pos as u32 + 1);
        }
    }

    #[test]
    fn head_count_scales_attention_instructions() {
        let cfg = GptConfig::tiny(); // 2 heads
        let b1 = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, 1)).unwrap();
        let b2 = ProgramBuilder::new(cfg, ParallelConfig::new(0, 2)).unwrap();
        let mm_count = |p: &Program| {
            p.instrs()
                .iter()
                .filter(|ai| matches!(ai.instr, Instr::Matrix(m) if m.kind == MatrixKind::MaskedMm))
                .count()
        };
        let p1 = b1.token_step(0, false);
        let p2 = b2.token_step(0, false);
        assert_eq!(mm_count(&p1), 2 * b1.config().num_layers);
        assert_eq!(mm_count(&p2), b1.config().num_layers);
    }

    #[test]
    fn vocab_ranges_partition_the_vocabulary() {
        let cfg = GptConfig::gpt2_1_5b();
        let mut covered = 0;
        for core in 0..4 {
            let par = ParallelConfig::new(core, 4);
            let (s, e) = par.vocab_range(&cfg);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, cfg.vocab_size);
    }

    #[test]
    fn indivisible_cluster_is_rejected() {
        // tiny has 2 heads; 3 cores cannot split them.
        let err = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 3));
        assert!(err.is_err());
    }

    #[test]
    fn gpt3_geometry_with_128_wide_heads_builds_valid_programs() {
        // The paper's GPT-3 projection: head_dim 128 spans two MAC-tree
        // blocks; programs must stay well-formed.
        let cfg = GptConfig::gpt3_6_7b();
        let b = ProgramBuilder::new(cfg, ParallelConfig::new(0, 8)).unwrap();
        let p = b.token_step(5, true);
        p.validate().unwrap();
        let score = p
            .instrs()
            .iter()
            .find_map(|ai| match ai.instr {
                Instr::Matrix(m) if m.kind == MatrixKind::MaskedMm => Some(m.rows),
                _ => None,
            })
            .unwrap();
        assert_eq!(score, 128, "head dim flows into the score operand");
    }

    #[test]
    fn instruction_count_is_stable_for_fixed_geometry() {
        // Regression anchor: geometry-driven instruction counts.
        let b = builder(2);
        let p0 = b.token_step(0, false);
        let p9 = b.token_step(9, false);
        // Context length does not change the instruction count, only
        // operand widths.
        assert_eq!(p0.len(), p9.len());
    }
}

//! The DFX instruction set (paper §IV-C).
//!
//! Three instruction classes exist, matching the paper:
//!
//! - **compute** — matrix instructions (`Conv1D`, `MaskedMM`, `MM`)
//!   executed by the matrix processing unit, and vector instructions
//!   (`add`, `sub`, `mul`, `accum`, `recip`, `recip_sqrt`, `exp`, `load`,
//!   `store`) executed by the vector processing unit;
//! - **dma** — data movement between off-chip memory (HBM/DDR) and the
//!   core's register files and buffers;
//! - **router** — ring-network synchronisation between peer cores.
//!
//! A matrix instruction covers an entire matrix operation; the operand
//! collectors expand it into per-tile microcode at runtime (§V-D), which
//! is why the instruction carries the full operand geometry.

use crate::tensor_ref::TensorRef;
use serde::{Deserialize, Serialize};

/// Identifier of a vector register (the register file manager's vector
/// file). The simulator models registers as variable-length FP16 vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub u8);

/// Identifier of a scalar register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SReg(pub u8);

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for SReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A contiguous slice of a vector register: `reg[offset .. offset+len]`.
///
/// Matrix instructions read/write slices so per-head results land at their
/// head offset within the attention output register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VSlice {
    /// The register.
    pub reg: VReg,
    /// Element offset within the register.
    pub offset: u32,
    /// Number of elements.
    pub len: u32,
}

impl VSlice {
    /// A slice covering `reg[0..len]`.
    pub fn full(reg: VReg, len: u32) -> Self {
        VSlice {
            reg,
            offset: 0,
            len,
        }
    }
}

impl std::fmt::Display for VSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.offset == 0 {
            write!(f, "{}[0..{}]", self.reg, self.len)
        } else {
            write!(
                f,
                "{}[{}..{}]",
                self.reg,
                self.offset,
                self.offset + self.len
            )
        }
    }
}

/// The three matrix-instruction kinds (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixKind {
    /// `y = A·x + b` — Q/K/V generation, attention projection, FFN.
    Conv1d,
    /// `y = A·x` with a −∞ mask on future positions — `Query × Keyᵀ`.
    MaskedMm,
    /// `y = A·x` — `Score × Value` and the LM head.
    Mm,
}

/// Post-MAC reduction performed by SFU_M.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceMax {
    /// No reduction.
    None,
    /// Write the maximum output element to a scalar register.
    Max(SReg),
    /// Write the argmax index to `idx` and the maximum to `max`
    /// (LM-head token selection).
    ArgMax {
        /// Receives the index (stored as an FP16-encoded integer).
        idx: SReg,
        /// Receives the maximum value.
        max: SReg,
    },
}

/// A matrix instruction: one whole matrix-vector operation, expanded to
/// tile microcode by the matrix operand collector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixInstr {
    /// Operation kind.
    pub kind: MatrixKind,
    /// Input vector slice (length must equal `rows`; `Conv1d` inputs
    /// longer than the core's maximum window are processed by sliding).
    pub src: VSlice,
    /// The weight/KV tensor streamed from HBM.
    pub weight: TensorRef,
    /// Optional bias vector (DDR), added per output element.
    pub bias: Option<TensorRef>,
    /// Output vector slice (length must equal `cols`).
    pub dst: VSlice,
    /// Rows of this core's weight partition (= input length).
    pub rows: u32,
    /// Columns of this core's weight partition (= output length).
    pub cols: u32,
    /// Columns at index ≥ `valid_cols` are masked to −∞ (`MaskedMm`
    /// future-token masking). Equal to `cols` when nothing is masked.
    pub valid_cols: u32,
    /// Optional constant post-multiplier (SFU_M uses a multiplier instead
    /// of a divider, §V-C) — carries the 1/√d_head attention scaling.
    pub scale: Option<f32>,
    /// Apply GELU in SFU_M (FFN up-projection).
    pub gelu: bool,
    /// Post-MAC reduce-max.
    pub reduce_max: ReduceMax,
}

/// Vector-unit opcode (paper §IV-C's vector instruction list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOpKind {
    /// Elementwise `dst = a + b`.
    Add,
    /// Elementwise `dst = a - b`.
    Sub,
    /// Elementwise `dst = a * b`.
    Mul,
    /// Broadcast `dst = a + s`.
    AddScalar,
    /// Broadcast `dst = a - s`.
    SubScalar,
    /// Broadcast `dst = a * s`.
    MulScalar,
    /// Elementwise exponential (4-cycle DSP pipeline).
    Exp,
    /// Copy (`load`/`store` between registers use the bypass path).
    Copy,
}

/// A vector instruction over full registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorInstr {
    /// Opcode.
    pub op: VectorOpKind,
    /// First operand register.
    pub a: VReg,
    /// Second vector operand (`Add`/`Sub`/`Mul`).
    pub b: Option<VReg>,
    /// Scalar operand (`*Scalar` forms).
    pub s: Option<SReg>,
    /// Destination register.
    pub dst: VReg,
    /// Vector length in elements.
    pub len: u32,
}

/// Reduction performed by SFU_V's adder/comparator tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Sum of all elements (`accum`).
    Sum,
    /// Maximum element.
    Max,
}

/// A vector-to-scalar reduction instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReduceInstr {
    /// Reduction kind.
    pub kind: ReduceKind,
    /// Source vector.
    pub v: VReg,
    /// Vector length.
    pub len: u32,
    /// Destination scalar register.
    pub dst: SReg,
}

/// Scalar-unit opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarOpKind {
    /// `dst = a + b` (b may be an immediate).
    Add,
    /// `dst = a * b` (b may be an immediate).
    Mul,
    /// `dst = 1 / a`.
    Recip,
    /// `dst = 1 / sqrt(a)`.
    RecipSqrt,
}

/// A scalar instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarInstr {
    /// Opcode.
    pub op: ScalarOpKind,
    /// First operand.
    pub a: SReg,
    /// Register second operand.
    pub b: Option<SReg>,
    /// Immediate second operand (mutually exclusive with `b`).
    pub imm: Option<f32>,
    /// Destination.
    pub dst: SReg,
}

/// DMA transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DmaDir {
    /// Memory → register file / buffer.
    Load,
    /// Register file → memory.
    Store,
}

/// A DMA instruction (paper format: `(type, src, dst, xfer_size)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DmaInstr {
    /// Direction.
    pub dir: DmaDir,
    /// The off-chip tensor.
    pub tensor: TensorRef,
    /// Row index within the tensor (embedding row = token id or position;
    /// KV row = token position). Zero when not meaningful.
    pub row: u32,
    /// The register-file side of the transfer (None for buffer-resident
    /// data such as streamed weights).
    pub reg: Option<VSlice>,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Route the store through the DMA transpose unit (Value rows, §V-B).
    pub transpose: bool,
}

/// Router synchronisation patterns over the ring network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterOp {
    /// All-gather: every core contributes `part_len` elements; afterwards
    /// every core holds the concatenation ordered by core id (the reorder
    /// unit guarantees identical order everywhere).
    AllGather,
    /// Exchange per-core `(argmax, max)` pairs and reduce to the global
    /// argmax (LM-head token selection across vocabulary partitions).
    AllReduceArgMax,
}

/// A router instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouterInstr {
    /// Synchronisation pattern.
    pub op: RouterOp,
    /// Local partial contribution (`AllGather`: the partial vector;
    /// `AllReduceArgMax`: ignored).
    pub src: VSlice,
    /// Destination for the gathered full vector (`AllGather`).
    pub dst: VSlice,
    /// Scalar pair for `AllReduceArgMax` (local in, global out).
    pub idx: Option<SReg>,
    /// Scalar holding the local/global max for `AllReduceArgMax`.
    pub max: Option<SReg>,
    /// Payload bytes contributed per core.
    pub bytes: u64,
}

/// One DFX instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Matrix-unit compute.
    Matrix(MatrixInstr),
    /// Vector-unit compute.
    Vector(VectorInstr),
    /// Vector→scalar reduction.
    Reduce(ReduceInstr),
    /// Scalar compute.
    Scalar(ScalarInstr),
    /// DMA transfer.
    Dma(DmaInstr),
    /// Ring-network synchronisation.
    Router(RouterInstr),
}

impl Instr {
    /// The paper's coarse instruction class ("compute", "dma", "router").
    pub fn class_name(&self) -> &'static str {
        match self {
            Instr::Matrix(_) | Instr::Vector(_) | Instr::Reduce(_) | Instr::Scalar(_) => "compute",
            Instr::Dma(_) => "dma",
            Instr::Router(_) => "router",
        }
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instr::Matrix(m) => {
                let name = match m.kind {
                    MatrixKind::Conv1d => "conv1d",
                    MatrixKind::MaskedMm => "maskedmm",
                    MatrixKind::Mm => "mm",
                };
                write!(f, "{name} {}, {} ({}x{})", m.src, m.weight, m.rows, m.cols)?;
                if let Some(b) = &m.bias {
                    write!(f, " +{b}")?;
                }
                write!(f, " -> {}", m.dst)?;
                if m.valid_cols != m.cols {
                    write!(f, " mask>={}", m.valid_cols)?;
                }
                if let Some(s) = m.scale {
                    write!(f, " scale={s}")?;
                }
                if m.gelu {
                    write!(f, " gelu")?;
                }
                match m.reduce_max {
                    ReduceMax::None => {}
                    ReduceMax::Max(s) => write!(f, " rmax->{s}")?,
                    ReduceMax::ArgMax { idx, max } => write!(f, " argmax->({idx},{max})")?,
                }
                Ok(())
            }
            Instr::Vector(v) => {
                let name = match v.op {
                    VectorOpKind::Add => "vadd",
                    VectorOpKind::Sub => "vsub",
                    VectorOpKind::Mul => "vmul",
                    VectorOpKind::AddScalar => "vadds",
                    VectorOpKind::SubScalar => "vsubs",
                    VectorOpKind::MulScalar => "vmuls",
                    VectorOpKind::Exp => "vexp",
                    VectorOpKind::Copy => "vcopy",
                };
                write!(f, "{name} {}", v.a)?;
                if let Some(b) = v.b {
                    write!(f, ", {b}")?;
                }
                if let Some(s) = v.s {
                    write!(f, ", {s}")?;
                }
                write!(f, " -> {} (len {})", v.dst, v.len)
            }
            Instr::Reduce(r) => {
                let name = match r.kind {
                    ReduceKind::Sum => "vaccum",
                    ReduceKind::Max => "vrmax",
                };
                write!(f, "{name} {} (len {}) -> {}", r.v, r.len, r.dst)
            }
            Instr::Scalar(s) => {
                let name = match s.op {
                    ScalarOpKind::Add => "sadd",
                    ScalarOpKind::Mul => "smul",
                    ScalarOpKind::Recip => "srecip",
                    ScalarOpKind::RecipSqrt => "srsqrt",
                };
                write!(f, "{name} {}", s.a)?;
                if let Some(b) = s.b {
                    write!(f, ", {b}")?;
                }
                if let Some(i) = s.imm {
                    write!(f, ", #{i}")?;
                }
                write!(f, " -> {}", s.dst)
            }
            Instr::Dma(d) => {
                let dir = match d.dir {
                    DmaDir::Load => "dma.load",
                    DmaDir::Store => "dma.store",
                };
                write!(f, "{dir} {}", d.tensor)?;
                if d.row != 0 {
                    write!(f, " row={}", d.row)?;
                }
                if let Some(r) = &d.reg {
                    match d.dir {
                        DmaDir::Load => write!(f, " -> {r}")?,
                        DmaDir::Store => write!(f, " <- {r}")?,
                    }
                }
                write!(f, " ({} B)", d.bytes)?;
                if d.transpose {
                    write!(f, " transpose")?;
                }
                Ok(())
            }
            Instr::Router(r) => match r.op {
                RouterOp::AllGather => {
                    write!(
                        f,
                        "sync.allgather {} -> {} ({} B/core)",
                        r.src, r.dst, r.bytes
                    )
                }
                RouterOp::AllReduceArgMax => write!(
                    f,
                    "sync.argmax ({},{}) ({} B/core)",
                    r.idx.expect("argmax idx"),
                    r.max.expect("argmax max"),
                    r.bytes
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor_ref::{KvKind, WeightKind};

    #[test]
    fn display_matrix_instruction() {
        let m = MatrixInstr {
            kind: MatrixKind::Conv1d,
            src: VSlice::full(VReg(1), 1536),
            weight: TensorRef::Weight {
                layer: 0,
                kind: WeightKind::Ffn1,
            },
            bias: Some(TensorRef::Bias {
                layer: 0,
                kind: WeightKind::Ffn1,
            }),
            dst: VSlice::full(VReg(2), 1536),
            rows: 1536,
            cols: 1536,
            valid_cols: 1536,
            scale: None,
            gelu: true,
            reduce_max: ReduceMax::None,
        };
        let text = Instr::Matrix(m).to_string();
        assert!(text.contains("conv1d"), "{text}");
        assert!(text.contains("gelu"), "{text}");
        assert!(text.contains("hbm:wf1[L0]"), "{text}");
    }

    #[test]
    fn display_masked_mm_with_mask_and_scale() {
        let m = MatrixInstr {
            kind: MatrixKind::MaskedMm,
            src: VSlice {
                reg: VReg(4),
                offset: 64,
                len: 64,
            },
            weight: TensorRef::Kv {
                layer: 3,
                head: 1,
                kind: KvKind::Key,
            },
            bias: None,
            dst: VSlice::full(VReg(5), 16),
            rows: 64,
            cols: 16,
            valid_cols: 9,
            scale: Some(0.125),
            gelu: false,
            reduce_max: ReduceMax::Max(SReg(0)),
        };
        let text = Instr::Matrix(m).to_string();
        assert!(text.contains("mask>=9"), "{text}");
        assert!(text.contains("scale=0.125"), "{text}");
        assert!(text.contains("rmax->s0"), "{text}");
    }

    #[test]
    fn class_names_match_paper_isa_types() {
        let v = Instr::Vector(VectorInstr {
            op: VectorOpKind::Add,
            a: VReg(0),
            b: Some(VReg(1)),
            s: None,
            dst: VReg(2),
            len: 64,
        });
        assert_eq!(v.class_name(), "compute");
        let d = Instr::Dma(DmaInstr {
            dir: DmaDir::Load,
            tensor: TensorRef::TokenIo,
            row: 0,
            reg: None,
            bytes: 4,
            transpose: false,
        });
        assert_eq!(d.class_name(), "dma");
        let r = Instr::Router(RouterInstr {
            op: RouterOp::AllGather,
            src: VSlice::full(VReg(7), 384),
            dst: VSlice::full(VReg(10), 1536),
            idx: None,
            max: None,
            bytes: 768,
        });
        assert_eq!(r.class_name(), "router");
        assert!(r.to_string().contains("sync.allgather"));
    }
}

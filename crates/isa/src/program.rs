//! Programs: annotated instruction sequences for one token step.

use crate::instr::{Instr, MatrixKind, ReduceMax, RouterOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The operation class an instruction is attributed to, matching the
/// latency-breakdown categories of the paper's Figures 4 and 15, plus the
/// end-to-end stages (embedding, LM head) that previous accelerators
/// omitted and DFX runs on-device (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Token embedding (WTE/WPE lookup and add).
    Embed,
    /// Layer normalisation.
    LayerNorm,
    /// Multi-head self-attention (QKV, score, softmax, context, output
    /// projection).
    SelfAttention,
    /// Residual additions.
    Residual,
    /// Feed-forward network.
    Ffn,
    /// Ring-network synchronisation.
    Sync,
    /// LM head (logits + argmax).
    LmHead,
}

impl OpClass {
    /// All classes in display order.
    pub const ALL: [OpClass; 7] = [
        OpClass::Embed,
        OpClass::LayerNorm,
        OpClass::SelfAttention,
        OpClass::Residual,
        OpClass::Ffn,
        OpClass::Sync,
        OpClass::LmHead,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Embed => "Embedding",
            OpClass::LayerNorm => "LayerNorm",
            OpClass::SelfAttention => "Self-Attention",
            OpClass::Residual => "Residual",
            OpClass::Ffn => "Feed-Forward Network",
            OpClass::Sync => "Synchronization",
            OpClass::LmHead => "LM Head",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction tagged with its op class (used for cycle attribution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedInstr {
    /// The instruction.
    pub instr: Instr,
    /// Attribution class.
    pub class: OpClass,
}

/// Static description of the step a program implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepMeta {
    /// Token position in the sequence (0-based). The KV context length
    /// after this step is `token_pos + 1`.
    pub token_pos: u32,
    /// Whether this step runs the final norm + LM head (last context token
    /// and every generation token).
    pub lm_head: bool,
    /// Core this program was built for.
    pub core_id: u32,
    /// Number of cores in the cluster.
    pub num_cores: u32,
}

/// A single-token-step program for one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Step description.
    pub meta: StepMeta,
    instrs: Vec<AnnotatedInstr>,
}

/// Error found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Index of the offending instruction.
    pub index: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instruction {}: {}", self.index, self.message)
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Creates an empty program.
    pub fn new(meta: StepMeta) -> Self {
        Program {
            meta,
            instrs: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, class: OpClass, instr: Instr) {
        self.instrs.push(AnnotatedInstr { instr, class });
    }

    /// The instructions in issue order.
    pub fn instrs(&self) -> &[AnnotatedInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Instruction count per paper ISA class (`compute`/`dma`/`router`).
    pub fn class_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut h = BTreeMap::new();
        for ai in &self.instrs {
            *h.entry(ai.instr.class_name()).or_insert(0) += 1;
        }
        h
    }

    /// Instruction count per [`OpClass`].
    pub fn op_class_histogram(&self) -> BTreeMap<OpClass, usize> {
        let mut h = BTreeMap::new();
        for ai in &self.instrs {
            *h.entry(ai.class).or_insert(0) += 1;
        }
        h
    }

    /// Disassembles to text, one instruction per line.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_class = None;
        for (i, ai) in self.instrs.iter().enumerate() {
            if last_class != Some(ai.class) {
                let _ = writeln!(out, "; --- {} ---", ai.class);
                last_class = Some(ai.class);
            }
            let _ = writeln!(out, "{i:5}: {}", ai.instr);
        }
        out
    }

    /// Structural validation: operand geometry is self-consistent and
    /// fused fields are only used where they are meaningful.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |index: usize, message: String| Err(ValidateError { index, message });
        for (i, ai) in self.instrs.iter().enumerate() {
            match &ai.instr {
                Instr::Matrix(m) => {
                    if m.src.len != m.rows {
                        return err(i, format!("src len {} != rows {}", m.src.len, m.rows));
                    }
                    if m.dst.len != m.cols {
                        return err(i, format!("dst len {} != cols {}", m.dst.len, m.cols));
                    }
                    if m.valid_cols > m.cols {
                        return err(i, format!("valid_cols {} > cols {}", m.valid_cols, m.cols));
                    }
                    if m.kind != MatrixKind::MaskedMm && m.valid_cols != m.cols {
                        return err(i, "masking is only defined for maskedmm".into());
                    }
                    if m.kind == MatrixKind::Conv1d
                        && matches!(m.reduce_max, ReduceMax::ArgMax { .. })
                    {
                        return err(i, "argmax fusion is for mm (LM head)".into());
                    }
                    if m.bias.is_some() && m.kind != MatrixKind::Conv1d {
                        return err(i, "bias is only defined for conv1d".into());
                    }
                    if m.rows == 0 || m.cols == 0 {
                        return err(i, "degenerate matrix shape".into());
                    }
                }
                Instr::Vector(v) => {
                    let needs_b = matches!(
                        v.op,
                        crate::instr::VectorOpKind::Add
                            | crate::instr::VectorOpKind::Sub
                            | crate::instr::VectorOpKind::Mul
                    );
                    let needs_s = matches!(
                        v.op,
                        crate::instr::VectorOpKind::AddScalar
                            | crate::instr::VectorOpKind::SubScalar
                            | crate::instr::VectorOpKind::MulScalar
                    );
                    if needs_b && v.b.is_none() {
                        return err(i, "vector-vector op missing b operand".into());
                    }
                    if needs_s && v.s.is_none() {
                        return err(i, "vector-scalar op missing s operand".into());
                    }
                    if v.len == 0 {
                        return err(i, "zero-length vector op".into());
                    }
                }
                Instr::Reduce(r) => {
                    if r.len == 0 {
                        return err(i, "zero-length reduction".into());
                    }
                }
                Instr::Scalar(s) => {
                    if s.b.is_some() && s.imm.is_some() {
                        return err(i, "scalar op has both register and immediate".into());
                    }
                    let needs_operand = matches!(
                        s.op,
                        crate::instr::ScalarOpKind::Add | crate::instr::ScalarOpKind::Mul
                    );
                    if needs_operand && s.b.is_none() && s.imm.is_none() {
                        return err(i, "binary scalar op missing second operand".into());
                    }
                }
                Instr::Dma(d) => {
                    if d.bytes == 0 {
                        return err(i, "zero-byte DMA".into());
                    }
                    if d.transpose && d.dir != crate::instr::DmaDir::Store {
                        return err(i, "transpose unit sits on the store path".into());
                    }
                }
                Instr::Router(r) => match r.op {
                    RouterOp::AllGather => {
                        if r.dst.len != r.src.len * self.meta.num_cores {
                            return err(
                                i,
                                format!(
                                    "allgather dst len {} != src len {} x {} cores",
                                    r.dst.len, r.src.len, self.meta.num_cores
                                ),
                            );
                        }
                    }
                    RouterOp::AllReduceArgMax => {
                        if r.idx.is_none() || r.max.is_none() {
                            return err(i, "argmax sync needs idx and max scalars".into());
                        }
                    }
                },
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::*;
    use crate::tensor_ref::{TensorRef, WeightKind};

    fn meta() -> StepMeta {
        StepMeta {
            token_pos: 0,
            lm_head: false,
            core_id: 0,
            num_cores: 2,
        }
    }

    #[test]
    fn histogram_counts_classes() {
        let mut p = Program::new(meta());
        p.push(
            OpClass::Residual,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Add,
                a: VReg(0),
                b: Some(VReg(1)),
                s: None,
                dst: VReg(2),
                len: 8,
            }),
        );
        p.push(
            OpClass::Sync,
            Instr::Router(RouterInstr {
                op: RouterOp::AllGather,
                src: VSlice::full(VReg(2), 8),
                dst: VSlice::full(VReg(3), 16),
                idx: None,
                max: None,
                bytes: 16,
            }),
        );
        assert_eq!(p.class_histogram()["compute"], 1);
        assert_eq!(p.class_histogram()["router"], 1);
        assert_eq!(p.op_class_histogram()[&OpClass::Sync], 1);
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let mut p = Program::new(meta());
        p.push(
            OpClass::Ffn,
            Instr::Matrix(MatrixInstr {
                kind: MatrixKind::Conv1d,
                src: VSlice::full(VReg(0), 100),
                weight: TensorRef::Weight {
                    layer: 0,
                    kind: WeightKind::Ffn1,
                },
                bias: None,
                dst: VSlice::full(VReg(1), 64),
                rows: 128, // mismatch with src.len
                cols: 64,
                valid_cols: 64,
                scale: None,
                gelu: false,
                reduce_max: ReduceMax::None,
            }),
        );
        let e = p.validate().unwrap_err();
        assert!(e.message.contains("src len"), "{e}");
    }

    #[test]
    fn validate_rejects_allgather_with_bad_fanin() {
        let mut p = Program::new(meta());
        p.push(
            OpClass::Sync,
            Instr::Router(RouterInstr {
                op: RouterOp::AllGather,
                src: VSlice::full(VReg(0), 8),
                dst: VSlice::full(VReg(1), 8), // should be 16 for 2 cores
                idx: None,
                max: None,
                bytes: 16,
            }),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_mask_on_conv1d() {
        let mut p = Program::new(meta());
        p.push(
            OpClass::Ffn,
            Instr::Matrix(MatrixInstr {
                kind: MatrixKind::Conv1d,
                src: VSlice::full(VReg(0), 8),
                weight: TensorRef::Weight {
                    layer: 0,
                    kind: WeightKind::Ffn1,
                },
                bias: None,
                dst: VSlice::full(VReg(1), 8),
                rows: 8,
                cols: 8,
                valid_cols: 4,
                scale: None,
                gelu: false,
                reduce_max: ReduceMax::None,
            }),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn disassembly_groups_by_class() {
        let mut p = Program::new(meta());
        p.push(
            OpClass::Residual,
            Instr::Vector(VectorInstr {
                op: VectorOpKind::Add,
                a: VReg(0),
                b: Some(VReg(1)),
                s: None,
                dst: VReg(2),
                len: 8,
            }),
        );
        let text = p.disassemble();
        assert!(text.contains("; --- Residual ---"), "{text}");
        assert!(text.contains("vadd"), "{text}");
    }
}

//! Binary encoding of DFX instructions.
//!
//! The host driver transfers programs to each core's instruction buffer as
//! a compact byte stream (the runtime microcode expansion happens in the
//! operand collectors, so the stream stays small — §V-D). The format is a
//! one-byte opcode followed by fixed-width little-endian operand fields;
//! [`decode_program`] is the exact inverse of [`encode_program`].

use crate::instr::{
    DmaDir, DmaInstr, Instr, MatrixInstr, MatrixKind, ReduceInstr, ReduceKind, ReduceMax,
    RouterInstr, RouterOp, SReg, ScalarInstr, ScalarOpKind, VReg, VSlice, VectorInstr,
    VectorOpKind,
};
use crate::program::{AnnotatedInstr, OpClass, Program, StepMeta};
use crate::tensor_ref::{EmbedTable, KvKind, LnParam, TensorRef, WeightKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Error produced when decoding a malformed instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: u32 = 0x4446_5831; // "DFX1"

/// Bounds-checked little-endian reader over the instruction stream.
struct Reader {
    buf: Bytes,
    total: usize,
}

impl Reader {
    fn new(buf: Bytes) -> Self {
        let total = buf.len();
        Reader { buf, total }
    }

    fn offset(&self) -> usize {
        self.total - self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), String> {
        if self.buf.remaining() < n {
            Err(format!("truncated stream (need {n} bytes)"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, String> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, String> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn f32(&mut self) -> Result<f32, String> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }
}

fn put_vslice(buf: &mut BytesMut, s: VSlice) {
    buf.put_u8(s.reg.0);
    buf.put_u32_le(s.offset);
    buf.put_u32_le(s.len);
}

fn get_vslice(buf: &mut Reader) -> Result<VSlice, String> {
    Ok(VSlice {
        reg: VReg(buf.u8()?),
        offset: buf.u32()?,
        len: buf.u32()?,
    })
}

fn put_tensor(buf: &mut BytesMut, t: TensorRef) {
    match t {
        TensorRef::Weight { layer, kind } => {
            buf.put_u8(0);
            buf.put_u16_le(layer);
            buf.put_u8(weight_kind_code(kind));
        }
        TensorRef::Bias { layer, kind } => {
            buf.put_u8(1);
            buf.put_u16_le(layer);
            buf.put_u8(weight_kind_code(kind));
        }
        TensorRef::Ln { layer, param } => {
            buf.put_u8(2);
            buf.put_u16_le(layer);
            buf.put_u8(param as u8);
        }
        TensorRef::Kv { layer, head, kind } => {
            buf.put_u8(3);
            buf.put_u16_le(layer);
            buf.put_u16_le(head);
            buf.put_u8(kind as u8);
        }
        TensorRef::Embed { table } => {
            buf.put_u8(4);
            buf.put_u8(table as u8);
        }
        TensorRef::TokenIo => buf.put_u8(5),
    }
}

fn weight_kind_code(k: WeightKind) -> u8 {
    WeightKind::ALL.iter().position(|&x| x == k).unwrap() as u8
}

fn weight_kind_from(code: u8) -> Result<WeightKind, String> {
    WeightKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("bad weight kind {code}"))
}

fn get_tensor(buf: &mut Reader) -> Result<TensorRef, String> {
    match buf.u8()? {
        0 => Ok(TensorRef::Weight {
            layer: buf.u16()?,
            kind: weight_kind_from(buf.u8()?)?,
        }),
        1 => Ok(TensorRef::Bias {
            layer: buf.u16()?,
            kind: weight_kind_from(buf.u8()?)?,
        }),
        2 => {
            let layer = buf.u16()?;
            let param = match buf.u8()? {
                0 => LnParam::Ln1Gamma,
                1 => LnParam::Ln1Beta,
                2 => LnParam::Ln2Gamma,
                3 => LnParam::Ln2Beta,
                4 => LnParam::LnFGamma,
                5 => LnParam::LnFBeta,
                x => return Err(format!("bad ln param {x}")),
            };
            Ok(TensorRef::Ln { layer, param })
        }
        3 => {
            let layer = buf.u16()?;
            let head = buf.u16()?;
            let kind = match buf.u8()? {
                0 => KvKind::Key,
                1 => KvKind::Value,
                x => return Err(format!("bad kv kind {x}")),
            };
            Ok(TensorRef::Kv { layer, head, kind })
        }
        4 => {
            let table = match buf.u8()? {
                0 => EmbedTable::Wte,
                1 => EmbedTable::Wpe,
                x => return Err(format!("bad embed table {x}")),
            };
            Ok(TensorRef::Embed { table })
        }
        5 => Ok(TensorRef::TokenIo),
        x => Err(format!("bad tensor tag {x}")),
    }
}

fn encode_instr(buf: &mut BytesMut, ai: &AnnotatedInstr) {
    buf.put_u8(ai.class as u8);
    match &ai.instr {
        Instr::Matrix(m) => {
            buf.put_u8(0);
            buf.put_u8(m.kind as u8);
            put_vslice(buf, m.src);
            put_tensor(buf, m.weight);
            match m.bias {
                Some(b) => {
                    buf.put_u8(1);
                    put_tensor(buf, b);
                }
                None => buf.put_u8(0),
            }
            put_vslice(buf, m.dst);
            buf.put_u32_le(m.rows);
            buf.put_u32_le(m.cols);
            buf.put_u32_le(m.valid_cols);
            match m.scale {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_f32_le(s);
                }
                None => buf.put_u8(0),
            }
            buf.put_u8(u8::from(m.gelu));
            match m.reduce_max {
                ReduceMax::None => buf.put_u8(0),
                ReduceMax::Max(s) => {
                    buf.put_u8(1);
                    buf.put_u8(s.0);
                }
                ReduceMax::ArgMax { idx, max } => {
                    buf.put_u8(2);
                    buf.put_u8(idx.0);
                    buf.put_u8(max.0);
                }
            }
        }
        Instr::Vector(v) => {
            buf.put_u8(1);
            buf.put_u8(v.op as u8);
            buf.put_u8(v.a.0);
            buf.put_u8(v.b.map_or(0xff, |r| r.0));
            buf.put_u8(v.s.map_or(0xff, |r| r.0));
            buf.put_u8(v.dst.0);
            buf.put_u32_le(v.len);
        }
        Instr::Reduce(r) => {
            buf.put_u8(2);
            buf.put_u8(r.kind as u8);
            buf.put_u8(r.v.0);
            buf.put_u32_le(r.len);
            buf.put_u8(r.dst.0);
        }
        Instr::Scalar(s) => {
            buf.put_u8(3);
            buf.put_u8(s.op as u8);
            buf.put_u8(s.a.0);
            buf.put_u8(s.b.map_or(0xff, |r| r.0));
            match s.imm {
                Some(i) => {
                    buf.put_u8(1);
                    buf.put_f32_le(i);
                }
                None => buf.put_u8(0),
            }
            buf.put_u8(s.dst.0);
        }
        Instr::Dma(d) => {
            buf.put_u8(4);
            buf.put_u8(d.dir as u8);
            put_tensor(buf, d.tensor);
            buf.put_u32_le(d.row);
            match d.reg {
                Some(r) => {
                    buf.put_u8(1);
                    put_vslice(buf, r);
                }
                None => buf.put_u8(0),
            }
            buf.put_u64_le(d.bytes);
            buf.put_u8(u8::from(d.transpose));
        }
        Instr::Router(r) => {
            buf.put_u8(5);
            buf.put_u8(r.op as u8);
            put_vslice(buf, r.src);
            put_vslice(buf, r.dst);
            buf.put_u8(r.idx.map_or(0xff, |s| s.0));
            buf.put_u8(r.max.map_or(0xff, |s| s.0));
            buf.put_u64_le(r.bytes);
        }
    }
}

fn op_class_from(code: u8) -> Result<OpClass, String> {
    OpClass::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("bad op class {code}"))
}

fn decode_instr(buf: &mut Reader) -> Result<AnnotatedInstr, String> {
    let class = op_class_from(buf.u8()?)?;
    let instr = match buf.u8()? {
        0 => {
            let kind = match buf.u8()? {
                0 => MatrixKind::Conv1d,
                1 => MatrixKind::MaskedMm,
                2 => MatrixKind::Mm,
                x => return Err(format!("bad matrix kind {x}")),
            };
            let src = get_vslice(buf)?;
            let weight = get_tensor(buf)?;
            let bias = if buf.u8()? == 1 {
                Some(get_tensor(buf)?)
            } else {
                None
            };
            let dst = get_vslice(buf)?;
            let rows = buf.u32()?;
            let cols = buf.u32()?;
            let valid_cols = buf.u32()?;
            let scale = if buf.u8()? == 1 {
                Some(buf.f32()?)
            } else {
                None
            };
            let gelu = buf.u8()? == 1;
            let reduce_max = match buf.u8()? {
                0 => ReduceMax::None,
                1 => ReduceMax::Max(SReg(buf.u8()?)),
                2 => ReduceMax::ArgMax {
                    idx: SReg(buf.u8()?),
                    max: SReg(buf.u8()?),
                },
                x => return Err(format!("bad reduce_max mode {x}")),
            };
            Instr::Matrix(MatrixInstr {
                kind,
                src,
                weight,
                bias,
                dst,
                rows,
                cols,
                valid_cols,
                scale,
                gelu,
                reduce_max,
            })
        }
        1 => {
            let op = match buf.u8()? {
                0 => VectorOpKind::Add,
                1 => VectorOpKind::Sub,
                2 => VectorOpKind::Mul,
                3 => VectorOpKind::AddScalar,
                4 => VectorOpKind::SubScalar,
                5 => VectorOpKind::MulScalar,
                6 => VectorOpKind::Exp,
                7 => VectorOpKind::Copy,
                x => return Err(format!("bad vector op {x}")),
            };
            let a = VReg(buf.u8()?);
            let b = match buf.u8()? {
                0xff => None,
                r => Some(VReg(r)),
            };
            let s = match buf.u8()? {
                0xff => None,
                r => Some(SReg(r)),
            };
            let dst = VReg(buf.u8()?);
            let len = buf.u32()?;
            Instr::Vector(VectorInstr {
                op,
                a,
                b,
                s,
                dst,
                len,
            })
        }
        2 => {
            let kind = match buf.u8()? {
                0 => ReduceKind::Sum,
                1 => ReduceKind::Max,
                x => return Err(format!("bad reduce kind {x}")),
            };
            let v = VReg(buf.u8()?);
            let len = buf.u32()?;
            let dst = SReg(buf.u8()?);
            Instr::Reduce(ReduceInstr { kind, v, len, dst })
        }
        3 => {
            let op = match buf.u8()? {
                0 => ScalarOpKind::Add,
                1 => ScalarOpKind::Mul,
                2 => ScalarOpKind::Recip,
                3 => ScalarOpKind::RecipSqrt,
                x => return Err(format!("bad scalar op {x}")),
            };
            let a = SReg(buf.u8()?);
            let b = match buf.u8()? {
                0xff => None,
                r => Some(SReg(r)),
            };
            let imm = if buf.u8()? == 1 {
                Some(buf.f32()?)
            } else {
                None
            };
            let dst = SReg(buf.u8()?);
            Instr::Scalar(ScalarInstr { op, a, b, imm, dst })
        }
        4 => {
            let dir = match buf.u8()? {
                0 => DmaDir::Load,
                1 => DmaDir::Store,
                x => return Err(format!("bad dma dir {x}")),
            };
            let tensor = get_tensor(buf)?;
            let row = buf.u32()?;
            let reg = if buf.u8()? == 1 {
                Some(get_vslice(buf)?)
            } else {
                None
            };
            let bytes = buf.u64()?;
            let transpose = buf.u8()? == 1;
            Instr::Dma(DmaInstr {
                dir,
                tensor,
                row,
                reg,
                bytes,
                transpose,
            })
        }
        5 => {
            let op = match buf.u8()? {
                0 => RouterOp::AllGather,
                1 => RouterOp::AllReduceArgMax,
                x => return Err(format!("bad router op {x}")),
            };
            let src = get_vslice(buf)?;
            let dst = get_vslice(buf)?;
            let idx = match buf.u8()? {
                0xff => None,
                r => Some(SReg(r)),
            };
            let max = match buf.u8()? {
                0xff => None,
                r => Some(SReg(r)),
            };
            let bytes = buf.u64()?;
            Instr::Router(RouterInstr {
                op,
                src,
                dst,
                idx,
                max,
                bytes,
            })
        }
        x => return Err(format!("bad instruction tag {x}")),
    };
    Ok(AnnotatedInstr { instr, class })
}

/// Encodes a program to its binary transfer format.
pub fn encode_program(program: &Program) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + program.len() * 32);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(program.meta.token_pos);
    buf.put_u8(u8::from(program.meta.lm_head));
    buf.put_u32_le(program.meta.core_id);
    buf.put_u32_le(program.meta.num_cores);
    buf.put_u32_le(program.len() as u32);
    for ai in program.instrs() {
        encode_instr(&mut buf, ai);
    }
    buf.freeze()
}

/// Decodes a program from its binary transfer format.
///
/// # Errors
///
/// Returns [`DecodeError`] on bad magic, truncation or invalid field
/// values.
pub fn decode_program(bytes: Bytes) -> Result<Program, DecodeError> {
    let mut r = Reader::new(bytes);
    let fail = |r: &Reader, message: String| DecodeError {
        offset: r.offset(),
        message,
    };
    let magic = r.u32().map_err(|m| fail(&r, m))?;
    if magic != MAGIC {
        return Err(fail(&r, "bad magic".into()));
    }
    let token_pos = r.u32().map_err(|m| fail(&r, m))?;
    let lm_head = r.u8().map_err(|m| fail(&r, m))? == 1;
    let core_id = r.u32().map_err(|m| fail(&r, m))?;
    let num_cores = r.u32().map_err(|m| fail(&r, m))?;
    let count = r.u32().map_err(|m| fail(&r, m))?;
    let mut program = Program::new(StepMeta {
        token_pos,
        lm_head,
        core_id,
        num_cores,
    });
    for i in 0..count {
        let ai = decode_instr(&mut r).map_err(|m| fail(&r, format!("instruction {i}: {m}")))?;
        program.push(ai.class, ai.instr);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ParallelConfig, ProgramBuilder};
    use dfx_model::GptConfig;

    #[test]
    fn roundtrip_full_token_step() {
        let b = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(1, 2)).unwrap();
        for (pos, lm) in [(0usize, false), (5, true)] {
            let p = b.token_step(pos, lm);
            let encoded = encode_program(&p);
            let decoded = decode_program(encoded).expect("decode");
            assert_eq!(p, decoded, "pos {pos} lm {lm}");
        }
    }

    #[test]
    fn stream_is_compact() {
        // Instruction chaining + runtime microcode keep host transfers
        // small: well under 64 bytes per instruction on average.
        let b = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 2)).unwrap();
        let p = b.token_step(3, true);
        let encoded = encode_program(&p);
        assert!(
            encoded.len() < p.len() * 64,
            "{} bytes for {} instructions",
            encoded.len(),
            p.len()
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode_program(Bytes::from_static(&[0u8; 32])).unwrap_err();
        assert!(err.message.contains("magic"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let b = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 1)).unwrap();
        let p = b.token_step(0, false);
        let encoded = encode_program(&p);
        let truncated = encoded.slice(0..encoded.len() / 2);
        assert!(decode_program(truncated).is_err());
    }
}

//! Symbolic references to tensors in device memory.
//!
//! DFX instructions address off-chip data through the DMA. In hardware the
//! controller derives HBM/DDR addresses from the layer number and a memory
//! map; the simulator keeps the reference symbolic (layer + tensor kind)
//! and resolves byte addresses through [`MemoryMap`], which mirrors the
//! paper's placement policy (§IV-B): weight matrices and the growing
//! K/V cache in HBM, biases, LayerNorm parameters, embeddings and token
//! I/O in DDR.

use serde::{Deserialize, Serialize};

/// Weight matrices streamed from HBM by matrix instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WeightKind {
    /// Query projection (head-wise partition).
    Query,
    /// Key projection (head-wise partition).
    Key,
    /// Value projection (head-wise partition).
    Value,
    /// Attention output projection (column-wise partition).
    AttnProj,
    /// FFN up projection (column-wise partition).
    Ffn1,
    /// FFN down projection (column-wise partition).
    Ffn2,
    /// LM head (WTEᵀ, vocabulary-partitioned).
    LmHead,
}

impl WeightKind {
    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            WeightKind::Query => "wq",
            WeightKind::Key => "wk",
            WeightKind::Value => "wv",
            WeightKind::AttnProj => "wa",
            WeightKind::Ffn1 => "wf1",
            WeightKind::Ffn2 => "wf2",
            WeightKind::LmHead => "wte_t",
        }
    }

    /// All weight kinds, in stream order.
    pub const ALL: [WeightKind; 7] = [
        WeightKind::Query,
        WeightKind::Key,
        WeightKind::Value,
        WeightKind::AttnProj,
        WeightKind::Ffn1,
        WeightKind::Ffn2,
        WeightKind::LmHead,
    ];
}

/// Which half of the cached attention context a reference names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KvKind {
    /// Cached keys (read as Kᵀ by `MaskedMM`).
    Key,
    /// Cached values (stored pre-transposed by the DMA transpose unit).
    Value,
}

/// Embedding tables resident in DDR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EmbedTable {
    /// Word token embedding.
    Wte,
    /// Word position embedding.
    Wpe,
}

/// LayerNorm parameter selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LnParam {
    /// γ of the pre-attention norm.
    Ln1Gamma,
    /// β of the pre-attention norm.
    Ln1Beta,
    /// γ of the pre-FFN norm.
    Ln2Gamma,
    /// β of the pre-FFN norm.
    Ln2Beta,
    /// γ of the final norm.
    LnFGamma,
    /// β of the final norm.
    LnFBeta,
}

/// A symbolic reference to one tensor in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TensorRef {
    /// A (per-core partition of a) weight matrix in HBM.
    Weight {
        /// Decoder layer index (ignored for `LmHead`).
        layer: u16,
        /// Which matrix.
        kind: WeightKind,
    },
    /// A bias vector partition in DDR.
    Bias {
        /// Decoder layer index.
        layer: u16,
        /// The projection the bias belongs to (LmHead has no bias).
        kind: WeightKind,
    },
    /// LayerNorm γ/β in DDR.
    Ln {
        /// Decoder layer index (ignored for the final norm).
        layer: u16,
        /// Which parameter vector.
        param: LnParam,
    },
    /// One head's K or V cache region in HBM.
    Kv {
        /// Decoder layer index.
        layer: u16,
        /// Head index *local to this core* (0..heads_per_core).
        head: u16,
        /// Keys or values.
        kind: KvKind,
    },
    /// One row of an embedding table in DDR.
    Embed {
        /// WTE or WPE.
        table: EmbedTable,
    },
    /// The token I/O buffer in DDR.
    TokenIo,
}

impl TensorRef {
    /// `true` for tensors placed in HBM (weights and KV cache); `false`
    /// for DDR residents (biases, norms, embeddings, token I/O).
    pub fn is_hbm(self) -> bool {
        matches!(self, TensorRef::Weight { .. } | TensorRef::Kv { .. })
    }
}

impl std::fmt::Display for TensorRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorRef::Weight { layer, kind } => write!(f, "hbm:{}[L{layer}]", kind.mnemonic()),
            TensorRef::Bias { layer, kind } => write!(f, "ddr:b_{}[L{layer}]", kind.mnemonic()),
            TensorRef::Ln { layer, param } => write!(f, "ddr:{param:?}[L{layer}]"),
            TensorRef::Kv { layer, head, kind } => {
                let k = match kind {
                    KvKind::Key => "K",
                    KvKind::Value => "V",
                };
                write!(f, "hbm:{k}[L{layer}.h{head}]")
            }
            TensorRef::Embed { table } => write!(f, "ddr:{table:?}"),
            TensorRef::TokenIo => write!(f, "ddr:token_io"),
        }
    }
}

/// Byte placement of every tensor on one core's HBM and DDR, mirroring the
/// paper's memory mapping. Addresses are deterministic functions of the
/// model geometry so all cores share one map for their own partitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryMap {
    /// Per-layer bytes reserved for each weight partition kind, in
    /// [`WeightKind::ALL`] order (LmHead stored once after all layers).
    weight_bytes: [u64; 7],
    /// Bytes reserved per head per KV kind (max_seq × head_dim × 2).
    kv_region_bytes: u64,
    /// Number of decoder layers.
    layers: u64,
    /// Local heads per core.
    heads: u64,
}

impl MemoryMap {
    /// Builds the map for one core's partition.
    pub fn new(
        layers: usize,
        heads_per_core: usize,
        weight_bytes: [u64; 7],
        kv_region_bytes: u64,
    ) -> Self {
        MemoryMap {
            weight_bytes,
            kv_region_bytes,
            layers: layers as u64,
            heads: heads_per_core as u64,
        }
    }

    /// Builds the map for one core of a model partitioned across a
    /// cluster (FP16 storage; KV regions reserved for the model's maximum
    /// sequence length).
    pub fn for_model(cfg: &dfx_model::GptConfig, par: crate::builder::ParallelConfig) -> Self {
        let e = cfg.embedding_dim as u64;
        let part = par.emb_part(cfg) as u64;
        let ffn_part = par.ffn_part(cfg) as u64;
        let (v0, v1) = par.vocab_range(cfg);
        let weight_bytes = [
            e * part * 2,                  // Query
            e * part * 2,                  // Key
            e * part * 2,                  // Value
            e * part * 2,                  // AttnProj
            e * ffn_part * 2,              // Ffn1
            cfg.ffn_dim as u64 * part * 2, // Ffn2
            e * (v1 - v0) as u64 * 2,      // LmHead
        ];
        let kv_region_bytes = cfg.max_seq_len as u64 * cfg.head_dim() as u64 * 2;
        MemoryMap::new(
            cfg.num_layers,
            par.heads_per_core(cfg),
            weight_bytes,
            kv_region_bytes,
        )
    }

    fn layer_weight_stride(&self) -> u64 {
        // Per-layer kinds only (LmHead excluded from the stride).
        self.weight_bytes[..6].iter().sum()
    }

    /// HBM byte address of a weight or KV tensor.
    ///
    /// # Panics
    ///
    /// Panics if the reference is not HBM-resident.
    pub fn hbm_addr(&self, tensor: TensorRef) -> u64 {
        match tensor {
            TensorRef::Weight { layer, kind } => {
                if kind == WeightKind::LmHead {
                    return self.layer_weight_stride() * self.layers;
                }
                let idx = WeightKind::ALL.iter().position(|&k| k == kind).unwrap();
                let prior: u64 = self.weight_bytes[..idx].iter().sum();
                u64::from(layer) * self.layer_weight_stride() + prior
            }
            TensorRef::Kv { layer, head, kind } => {
                let weights_end = self.layer_weight_stride() * self.layers + self.weight_bytes[6];
                let per_layer = self.kv_region_bytes * self.heads * 2;
                let kv_off = match kind {
                    KvKind::Key => 0,
                    KvKind::Value => self.kv_region_bytes * self.heads,
                };
                weights_end
                    + u64::from(layer) * per_layer
                    + kv_off
                    + u64::from(head) * self.kv_region_bytes
            }
            other => panic!("{other} is not HBM-resident"),
        }
    }

    /// Total HBM bytes the map occupies (weights + fully grown KV).
    pub fn hbm_footprint(&self) -> u64 {
        self.weight_footprint() + self.kv_region_bytes * self.heads * 2 * self.layers
    }

    /// HBM bytes of the resident weight shard alone (all layers plus the
    /// LM head) — the always-resident part of the footprint, next to
    /// which the per-request K/V caches must fit.
    pub fn weight_footprint(&self) -> u64 {
        self.layer_weight_stride() * self.layers + self.weight_bytes[6]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> MemoryMap {
        // 2 layers, 2 local heads, toy sizes.
        MemoryMap::new(2, 2, [100, 100, 100, 100, 400, 400, 1000], 64)
    }

    #[test]
    fn weight_addresses_are_disjoint_and_ordered() {
        let map = sample_map();
        let q0 = map.hbm_addr(TensorRef::Weight {
            layer: 0,
            kind: WeightKind::Query,
        });
        let k0 = map.hbm_addr(TensorRef::Weight {
            layer: 0,
            kind: WeightKind::Key,
        });
        let q1 = map.hbm_addr(TensorRef::Weight {
            layer: 1,
            kind: WeightKind::Query,
        });
        assert_eq!(q0, 0);
        assert_eq!(k0, 100);
        assert_eq!(q1, 1200);
    }

    #[test]
    fn lm_head_follows_all_layers() {
        let map = sample_map();
        let lm = map.hbm_addr(TensorRef::Weight {
            layer: 0,
            kind: WeightKind::LmHead,
        });
        assert_eq!(lm, 2400);
    }

    #[test]
    fn kv_regions_follow_weights_and_do_not_overlap() {
        let map = sample_map();
        let base = 2400 + 1000;
        let k_l0_h0 = map.hbm_addr(TensorRef::Kv {
            layer: 0,
            head: 0,
            kind: KvKind::Key,
        });
        let k_l0_h1 = map.hbm_addr(TensorRef::Kv {
            layer: 0,
            head: 1,
            kind: KvKind::Key,
        });
        let v_l0_h0 = map.hbm_addr(TensorRef::Kv {
            layer: 0,
            head: 0,
            kind: KvKind::Value,
        });
        let k_l1_h0 = map.hbm_addr(TensorRef::Kv {
            layer: 1,
            head: 0,
            kind: KvKind::Key,
        });
        assert_eq!(k_l0_h0, base);
        assert_eq!(k_l0_h1, base + 64);
        assert_eq!(v_l0_h0, base + 128);
        assert_eq!(k_l1_h0, base + 256);
        assert_eq!(map.hbm_footprint(), 2400 + 1000 + 512);
        assert_eq!(map.weight_footprint(), 2400 + 1000);
    }

    #[test]
    #[should_panic(expected = "not HBM-resident")]
    fn ddr_tensor_has_no_hbm_address() {
        let map = sample_map();
        let _ = map.hbm_addr(TensorRef::TokenIo);
    }

    #[test]
    fn display_forms_are_readable() {
        let t = TensorRef::Weight {
            layer: 3,
            kind: WeightKind::Ffn1,
        };
        assert_eq!(t.to_string(), "hbm:wf1[L3]");
        let kv = TensorRef::Kv {
            layer: 1,
            head: 2,
            kind: KvKind::Value,
        };
        assert_eq!(kv.to_string(), "hbm:V[L1.h2]");
        assert!(!TensorRef::TokenIo.is_hbm());
    }
}

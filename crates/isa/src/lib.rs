//! # dfx-isa — the DFX instruction set and GPT-2 program builder
//!
//! The DFX core is programmable through a custom assembly-level ISA with
//! three instruction classes — `compute` (matrix + vector), `dma` and
//! `router` (paper §IV-C). This crate defines the instructions, their
//! binary encoding, and [`ProgramBuilder`], the compiler that lowers GPT-2
//! inference (Algorithm 1 of the paper) into per-token-step programs with
//! the paper's hardware-aware orderings: Value-first transpose hiding,
//! four ring synchronisations per decoder layer, softmax and LayerNorm as
//! vector/scalar sequences, and fused GELU / reduce-max in the matrix
//! path.
//!
//! ```
//! use dfx_isa::{ParallelConfig, ProgramBuilder};
//! use dfx_model::GptConfig;
//!
//! let builder = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 2)).unwrap();
//! let step = builder.token_step(0, true);
//! assert!(step.validate().is_ok());
//! println!("{}", step.disassemble());
//! ```

#![warn(missing_docs)]

mod builder;
mod encoding;
mod instr;
mod program;
mod tensor_ref;

pub use builder::{regs, BuilderOptions, ParallelConfig, ProgramBuilder, QkvOrder};
pub use encoding::{decode_program, encode_program, DecodeError};
pub use instr::{
    DmaDir, DmaInstr, Instr, MatrixInstr, MatrixKind, ReduceInstr, ReduceKind, ReduceMax,
    RouterInstr, RouterOp, SReg, ScalarInstr, ScalarOpKind, VReg, VSlice, VectorInstr,
    VectorOpKind,
};
pub use program::{AnnotatedInstr, OpClass, Program, StepMeta, ValidateError};
pub use tensor_ref::{EmbedTable, KvKind, LnParam, MemoryMap, TensorRef, WeightKind};

//! Robustness: the binary decoder must never panic, whatever bytes the
//! host hands it — truncations, corruptions, or garbage.

use bytes::Bytes;
use dfx_isa::{decode_program, encode_program, ParallelConfig, ProgramBuilder};
use dfx_model::GptConfig;
use proptest::prelude::*;

proptest! {
    #[test]
    fn decoding_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Error or success are both fine; a panic is not.
        let _ = decode_program(Bytes::from(data));
    }

    #[test]
    fn truncating_a_valid_stream_errors_cleanly(cut in 0usize..1000) {
        let builder = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 2)).unwrap();
        let encoded = encode_program(&builder.token_step(1, true));
        let cut = cut.min(encoded.len().saturating_sub(1));
        let truncated = encoded.slice(0..cut);
        prop_assert!(decode_program(truncated).is_err());
    }

    #[test]
    fn single_byte_corruption_never_panics(
        pos in 0usize..2000,
        flip in 1u8..=255,
    ) {
        let builder = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 1)).unwrap();
        let encoded = encode_program(&builder.token_step(0, false));
        let mut bytes = encoded.to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        // Corruption may decode to a *different* valid program or error;
        // both are acceptable, panics are not. Structural validation is
        // the second line of defence.
        if let Ok(p) = decode_program(Bytes::from(bytes)) {
            let _ = p.validate();
        }
    }
}

//! Minimal stand-in for `rand` 0.8.
//!
//! Implements the slice of the API this workspace uses: the [`Rng`]
//! extension trait with `gen` / `gen_range`, the [`SeedableRng`]
//! constructor trait with `seed_from_u64`, and [`rngs::StdRng`], a
//! deterministic xoshiro256++ generator seeded through SplitMix64
//! (the same seeding scheme the real `rand` uses for small seeds).
//!
//! Everything is deterministic for a given seed, which is exactly what
//! the simulator wants for reproducible synthetic weights and workloads.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        // lo + unit*(hi-lo) can round up to hi; clamp to keep [lo, hi).
        (lo + unit * (hi - lo)).min(hi.next_down())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 / ((1u64 << 24) - 1) as f32;
        // lo + unit*(hi-lo) can round past hi; clamp to keep [lo, hi].
        (lo + unit * (hi - lo)).min(hi)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        // lo + unit*(hi-lo) can round up to hi; clamp to keep [lo, hi).
        (lo + unit * (hi - lo)).min(hi.next_down())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        // lo + unit*(hi-lo) can round past hi; clamp to keep [lo, hi].
        (lo + unit * (hi - lo)).min(hi)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draws a sample with the standard distribution for the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}
impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Sample with the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` as the real crate exposes it.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

//! Minimal wall-clock stand-in for `criterion` 0.5.
//!
//! Supports the subset the workspace benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], per-group
//! `sample_size`, `bench_function` with a [`Bencher`], and [`black_box`].
//! Each benchmark is timed with `std::time::Instant` over a fixed
//! per-sample time budget and the mean/min per-iteration time is printed.
//! There is no statistical analysis, warm-up tuning or HTML report.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_bench(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration to estimate the per-iter cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20 ms of work per sample, capped so huge routines still
    // finish, with at least one iteration.
    let budget = Duration::from_millis(20);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / (iters as u32);
        best = best.min(per);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean = total / (total_iters.max(1) as u32);
    println!(
        "{full_id:<40} mean {:>10}   best {:>10}   ({samples} samples x {iters} iters)",
        format_time(mean),
        format_time(best)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.samples, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Defines and immediately runs an ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into(), 10, &mut f);
        self
    }

    /// Parses CLI configuration. The stand-in accepts and ignores all
    /// arguments (so `cargo bench -- <filter>` does not error).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Marker-only stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public report
//! and config types so downstream users can persist them, but nothing in
//! the tree serializes at runtime. This crate provides the two trait
//! names (in the type namespace) and the no-op derive macros (in the
//! macro namespace) so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.

/// Marker for types that can be serialized.
///
/// The vendored stand-in has no methods; the derive expands to nothing.
pub trait Serialize {}

/// Marker for types that can be deserialized.
///
/// The vendored stand-in has no methods; the derive expands to nothing.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace only uses serde derives as markers (nothing serializes at
//! runtime — there is no `serde_json` in the tree), so the derives accept
//! the container and all `#[serde(...)]` helper attributes and expand to
//! an empty token stream.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`. Expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`. Expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Minimal stand-in for the `bytes` crate (1.x API subset).
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits
//! with the little-endian accessors the DFX binary program encoding uses.
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable
//! storage, as in the real crate; reading through [`Buf`] consumes from
//! the front of the view.

use std::sync::Arc;

/// A cheaply cloneable contiguous slice of immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Creates `Bytes` from a static slice. The stand-in copies (the
    /// real crate borrows), which is semantically equivalent.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of `self` for the given range (relative to the
    /// current view). Panics when the range is out of bounds, like the
    /// real crate.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice index out of range: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes. Panics past the end.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics when empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`. Panics on underflow.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`. Panics on underflow.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`. Panics on underflow.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Converts into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(1.5);
        let mut b = w.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_f32_le(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.to_vec(), vec![3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }
}

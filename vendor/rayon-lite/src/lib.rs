//! Minimal deterministic scoped thread pool — the vendored stand-in
//! for the one `rayon` shape this workspace uses: *map N independent
//! items across worker threads, collect results in input order*.
//!
//! Like the other `vendor/` crates this is registry-free and
//! dependency-free. Unlike real rayon there is no global registry, no
//! join primitive and no work-*stealing* deque per worker: items are
//! claimed from a single shared atomic counter (self-scheduling), which
//! for the coarse, similarly-sized sweep cells in `dfx-bench` gives the
//! same load-balancing property (a fast worker drains the tail while a
//! slow one finishes its cell) with far less machinery.
//!
//! Determinism contract: [`par_map`] returns results **ordered by input
//! index**, bit-identical to the serial `map`, regardless of thread
//! count or interleaving. No wall clocks, no RNGs; worker count comes
//! from [`std::thread::available_parallelism`] unless overridden with
//! [`with_max_threads`] (which `dfx-bench`'s determinism harness uses
//! to pin pool-off runs to one thread).
//!
//! Panic policy: a panicking closure does not deadlock the pool — the
//! panic payload is captured and re-raised on the caller's thread after
//! every worker has parked.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`with_max_threads`].
    static MAX_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with every [`par_map`] on this thread capped at `n` worker
/// threads (`n = 1` forces fully serial execution — the pool-off
/// reference the determinism tests compare against). The previous
/// override is restored on exit, including on panic.
pub fn with_max_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.with(|m| m.set(self.0));
        }
    }
    let _restore = Restore(MAX_THREADS.with(|m| m.replace(Some(n.max(1)))));
    f()
}

/// Worker count for `items` work items: the thread-local override if
/// one is installed, else the machine's available parallelism, never
/// more than one thread per item.
fn thread_count(items: usize) -> usize {
    let cap = MAX_THREADS.with(|m| m.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    cap.min(items).max(1)
}

/// Maps `f` over `items` on a scoped worker pool and returns the
/// results **in input order** — bit-identical to
/// `items.iter().map(f).collect()` whatever the thread count.
///
/// `f` runs once per item, on an unspecified worker thread; items are
/// claimed dynamically (self-scheduling), so uneven cell costs balance
/// without a static partition. With one item (or a
/// [`with_max_threads(1, ..)`](with_max_threads) override, or a
/// single-core machine) everything runs on the calling thread with no
/// spawn at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return out;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(payload) => {
                                let mut slot = panic_slot.lock().unwrap_or_else(|p| p.into_inner());
                                slot.get_or_insert(payload);
                                // Drain the counter so every worker
                                // exits promptly instead of computing
                                // results that will be discarded.
                                next.store(items.len(), Ordering::Relaxed);
                                return out;
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker can only die from a panic in `f`, which it
            // already parked in `panic_slot`; an empty chunk keeps
            // the merge loop going until we re-raise below.
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    if let Some(payload) = panic_slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for chunk in &mut collected {
        for (i, r) in chunk.drain(..) {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly one result"))
        .collect()
}

/// Index-aware variant of [`par_map`]: `f` receives `(index, &item)`.
/// Results are still returned in input order.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    par_map(&indexed, |&(i, item)| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pool_on_matches_pool_off_bit_for_bit() {
        let items: Vec<u64> = (0..64).collect();
        let f = |&i: &u64| (i as f64).sqrt() + i as f64 * 1e-3;
        let serial = with_max_threads(1, || par_map(&items, f));
        let parallel = with_max_threads(8, || par_map(&items, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(&empty, |&i| i).len(), 0);
        assert_eq!(par_map(&[42u32], |&i| i + 1), vec![43]);
    }

    #[test]
    fn override_nests_and_restores() {
        with_max_threads(4, || {
            with_max_threads(1, || {
                assert_eq!(thread_count(100), 1);
            });
            assert_eq!(thread_count(100), 4);
        });
        assert!(MAX_THREADS.with(|m| m.get()).is_none());
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&i| {
                assert!(i != 13, "boom");
                i
            })
        }));
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }

    #[test]
    fn indexed_variant_sees_the_right_indices() {
        let items = ["a", "b", "c"];
        let out = par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }
}

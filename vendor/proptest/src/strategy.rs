//! Strategies: composable recipes for generating random test inputs.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange, SampleUniform};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking; a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can be mixed
    /// (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased sub-strategies (see `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform,
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform,
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

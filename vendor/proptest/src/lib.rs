//! Minimal stand-in for `proptest` 1.x.
//!
//! Implements random property testing over the strategy combinators this
//! workspace uses: numeric ranges, [`strategy::Just`], `prop_oneof!`,
//! `prop_map`, tuples, [`collection::vec`] and [`arbitrary::any`]. The
//! `proptest!` macro generates ordinary `#[test]` functions that sample a
//! deterministic RNG (seeded from the test name, overridable with
//! `PROPTEST_SEED`) for `ProptestConfig::cases` iterations.
//!
//! Differences from the real crate: failing inputs are **not shrunk** —
//! the failure message prints the concrete sampled inputs instead — and
//! persistence/regression files are not written.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Builds a strategy choosing uniformly between the given sub-strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case (with an optional formatted message)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}", lhs, rhs, format!($($fmt)*)
        );
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)*)
        );
    }};
}

/// Rejects the current test case (it is re-drawn, not counted) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; ) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(&strategy, |__proptest_values| {
                let ($($pat,)+) = __proptest_values;
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
}

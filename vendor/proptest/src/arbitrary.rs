//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (uniform over the representation).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

//! The runner behind the `proptest!` macro.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies. Deterministic per test (seeded from the
/// test name) unless `PROPTEST_SEED` overrides the seed.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Access the underlying `rand` generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Outcome of a single test case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed: the property does not hold for the input.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: samples inputs and runs the body until
/// `config.cases` cases pass, a case fails, or the rejection budget is
/// exhausted.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        TestRunner {
            config,
            name,
            rng: TestRng::from_seed(seed),
            seed,
        }
    }

    /// Runs the property. Panics (failing the surrounding `#[test]`) on
    /// the first failing case, printing the sampled input.
    pub fn run<S>(
        &mut self,
        strategy: &S,
        mut case: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) where
        S: Strategy,
        S::Value: std::fmt::Debug,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.sample(&mut self.rng);
            let described = format!("{value:?}");
            match case(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest {}: too many prop_assume! rejections \
                             ({rejected}) after {passed} passing cases",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed after {passed} passing cases \
                         (seed {}): {msg}\n  input: {described}",
                        self.name, self.seed
                    );
                }
            }
        }
    }
}

//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
